package postbox

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"time"
)

func mustIdentity(t testing.TB) *Identity {
	t.Helper()
	id, err := NewIdentity(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestAddressSelfCertifying(t *testing.T) {
	id := mustIdentity(t)
	pub := id.Public()
	if !pub.Verify(id.Address()) {
		t.Error("public identity must verify its own address")
	}
	other := mustIdentity(t)
	if other.Public().Verify(id.Address()) {
		t.Error("a different identity must not verify the address")
	}
	if id.Address().String() == "" || len(id.Address().String()) != 16 {
		t.Errorf("address hex = %q", id.Address().String())
	}
}

func TestPublicIdentityEncodeDecode(t *testing.T) {
	id := mustIdentity(t)
	enc := id.Public().Encode()
	if len(enc) != 64 {
		t.Fatalf("encoded length = %d", len(enc))
	}
	dec, err := DecodePublicIdentity(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Address() != id.Address() {
		t.Error("decode changed the address")
	}
	if _, err := DecodePublicIdentity(enc[:63]); err == nil {
		t.Error("short encoding should error")
	}
}

func TestPostboxInfoRoundTrip(t *testing.T) {
	id := mustIdentity(t)
	info := PostboxInfo{Identity: id.Public(), Building: 123456}
	enc := EncodePostboxInfo(info)
	if len(enc) != 68 {
		t.Fatalf("info length = %d", len(enc))
	}
	dec, err := DecodePostboxInfo(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Building != 123456 || dec.Identity.Address() != id.Address() {
		t.Errorf("decoded = %+v", dec)
	}
	if _, err := DecodePostboxInfo(enc[:10]); err == nil {
		t.Error("short info should error")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	alice := mustIdentity(t)
	bob := mustIdentity(t)
	msg := []byte("bob, are you safe? meet at the library")
	sealed, err := Seal(rand.Reader, alice, bob.Public(), msg)
	if err != nil {
		t.Fatal(err)
	}
	got, sender, err := Open(bob, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("plaintext = %q", got)
	}
	if sender.Address() != alice.Address() {
		t.Error("sender identity mismatch")
	}
}

func TestSealHidesSender(t *testing.T) {
	alice := mustIdentity(t)
	bob := mustIdentity(t)
	sealed, err := Seal(rand.Reader, alice, bob.Public(), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	alicePub := alice.Public().Encode()
	if bytes.Contains(sealed, alicePub[:16]) {
		t.Error("sender public key visible in sealed message")
	}
	if bytes.Contains(sealed, []byte("secret")) {
		t.Error("plaintext visible in sealed message")
	}
}

func TestOpenWrongRecipient(t *testing.T) {
	alice := mustIdentity(t)
	bob := mustIdentity(t)
	eve := mustIdentity(t)
	sealed, _ := Seal(rand.Reader, alice, bob.Public(), []byte("for bob"))
	if _, _, err := Open(eve, sealed); !errors.Is(err, ErrDecrypt) {
		t.Errorf("eve open = %v, want ErrDecrypt", err)
	}
}

func TestOpenTamperDetected(t *testing.T) {
	alice := mustIdentity(t)
	bob := mustIdentity(t)
	sealed, _ := Seal(rand.Reader, alice, bob.Public(), []byte("original"))
	for _, idx := range []int{0, 33, len(sealed) - 1} {
		bad := append([]byte(nil), sealed...)
		bad[idx] ^= 0x01
		if _, _, err := Open(bob, bad); err == nil {
			t.Errorf("tamper at %d undetected", idx)
		}
	}
	if _, _, err := Open(bob, sealed[:10]); !errors.Is(err, ErrDecrypt) {
		t.Errorf("truncated = %v", err)
	}
}

func TestSealDistinctCiphertexts(t *testing.T) {
	alice := mustIdentity(t)
	bob := mustIdentity(t)
	a, _ := Seal(rand.Reader, alice, bob.Public(), []byte("x"))
	b, _ := Seal(rand.Reader, alice, bob.Public(), []byte("x"))
	if bytes.Equal(a, b) {
		t.Error("sealing twice should not repeat ciphertext (ephemeral keys)")
	}
}

func TestStorePutRetrieveAck(t *testing.T) {
	s := NewStore()
	var addr Address
	addr[0] = 7
	s.Put(addr, []byte("m1"), false)
	s.Put(addr, []byte("m2"), false)
	s.Put(addr, []byte("m3"), false)
	if s.Len(addr) != 3 {
		t.Fatalf("Len = %d", s.Len(addr))
	}
	msgs := s.Retrieve(addr, 0, 42)
	if len(msgs) != 3 || string(msgs[0].Sealed) != "m1" {
		t.Fatalf("Retrieve = %v", msgs)
	}
	// Incremental retrieve.
	if got := s.Retrieve(addr, msgs[1].Seq, 42); len(got) != 1 || string(got[0].Sealed) != "m3" {
		t.Errorf("incremental = %v", got)
	}
	// Location cached.
	if b, ok := s.LastSeen(addr); !ok || b != 42 {
		t.Errorf("LastSeen = %d, %v", b, ok)
	}
	// Ack drops acknowledged prefix.
	s.Ack(addr, msgs[1].Seq)
	if s.Len(addr) != 1 {
		t.Errorf("after Ack Len = %d", s.Len(addr))
	}
	s.Ack(addr, msgs[2].Seq)
	if s.Len(addr) != 0 {
		t.Errorf("after full Ack Len = %d", s.Len(addr))
	}
	// Ack of already-acked seq is a no-op.
	s.Ack(addr, 1)
}

func TestStoreCapacityEviction(t *testing.T) {
	s := NewStore(WithCapacity(2))
	var addr Address
	s.Put(addr, []byte("a"), false)
	s.Put(addr, []byte("b"), false)
	s.Put(addr, []byte("c"), false)
	msgs := s.Retrieve(addr, 0, 0)
	if len(msgs) != 2 || string(msgs[0].Sealed) != "b" {
		t.Errorf("eviction kept %v", msgs)
	}
}

func TestStoreExpire(t *testing.T) {
	now := time.Unix(1000000, 0)
	clock := func() time.Time { return now }
	s := NewStore(WithClock(clock), WithRetention(time.Hour))
	var a1, a2 Address
	a2[0] = 1
	s.Put(a1, []byte("old"), false)
	s.Put(a2, []byte("old2"), false)
	now = now.Add(30 * time.Minute)
	s.Put(a1, []byte("new"), false)
	now = now.Add(45 * time.Minute) // first messages now 75 min old
	if dropped := s.Expire(); dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
	if s.Len(a1) != 1 || s.Len(a2) != 0 {
		t.Errorf("post-expire lens = %d, %d", s.Len(a1), s.Len(a2))
	}
	if dropped := s.Expire(); dropped != 0 {
		t.Errorf("second expire dropped %d", dropped)
	}
}

func TestStorePushNotification(t *testing.T) {
	var pushed []int
	s := NewStore(WithPush(func(msg StoredMessage, last int) {
		pushed = append(pushed, last)
	}))
	var addr Address
	// No location cached yet: no push.
	s.Put(addr, []byte("urgent1"), true)
	if len(pushed) != 0 {
		t.Fatal("push without location")
	}
	// Device checks in from building 9; next urgent message pushes.
	s.Retrieve(addr, 0, 9)
	s.Put(addr, []byte("urgent2"), true)
	if len(pushed) != 1 || pushed[0] != 9 {
		t.Errorf("pushed = %v", pushed)
	}
	// Non-urgent messages never push.
	s.Put(addr, []byte("normal"), false)
	if len(pushed) != 1 {
		t.Error("non-urgent pushed")
	}
}

func TestStoreIsolationBetweenBoxes(t *testing.T) {
	s := NewStore()
	var a, b Address
	b[7] = 0xff
	s.Put(a, []byte("for a"), false)
	if got := s.Retrieve(b, 0, 0); len(got) != 0 {
		t.Errorf("cross-box leak: %v", got)
	}
}

func TestStoredMessageCopied(t *testing.T) {
	s := NewStore()
	var addr Address
	buf := []byte("mutable")
	s.Put(addr, buf, false)
	buf[0] = 'X'
	got := s.Retrieve(addr, 0, 0)
	if string(got[0].Sealed) != "mutable" {
		t.Error("store aliases caller buffer")
	}
}

func BenchmarkSeal(b *testing.B) {
	alice := mustIdentity(b)
	bob := mustIdentity(b)
	msg := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Seal(rand.Reader, alice, bob.Public(), msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpen(b *testing.B) {
	alice := mustIdentity(b)
	bob := mustIdentity(b)
	sealed, _ := Seal(rand.Reader, alice, bob.Public(), make([]byte, 256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Open(bob, sealed); err != nil {
			b.Fatal(err)
		}
	}
}
