package postbox

import (
	"sort"
	"sync"
	"time"
)

// StoredMessage is one message held by a postbox store.
type StoredMessage struct {
	// Seq is the store-assigned sequence number (monotonic per store).
	Seq uint64
	// To is the recipient address.
	To Address
	// Sealed is the encrypted message body (opaque to the store).
	Sealed []byte
	// Urgent requests push notification (packet.FlagUrgent).
	Urgent bool
	// StoredAt is the store's clock reading at acceptance.
	StoredAt time.Time
}

// PushFunc is invoked for urgent messages when the recipient has a cached
// location (§3 step 4 push notifications).
type PushFunc func(msg StoredMessage, lastBuilding int)

// Store is the message cache an AP runs for the postboxes it hosts. It is
// safe for concurrent use (the agent receives packets from multiple
// transports).
type Store struct {
	mu sync.Mutex
	// clock is injectable for deterministic tests.
	clock func() time.Time
	// maxPerBox bounds memory per recipient; oldest messages are evicted.
	maxPerBox int
	// retention drops messages older than this on Expire.
	retention time.Duration

	seq   uint64
	boxes map[Address][]StoredMessage
	// lastSeen caches each recipient's last-known building, refreshed on
	// every retrieval; it powers push notifications.
	lastSeen map[Address]int
	push     PushFunc

	// persist is the optional disk attachment (see persist.go); nil for a
	// purely in-memory store.
	persist *persister
	// compactAt carries WithCompactThreshold until OpenDir builds the
	// persister.
	compactAt int64
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithClock injects a clock (tests, simulations).
func WithClock(clock func() time.Time) StoreOption {
	return func(s *Store) { s.clock = clock }
}

// WithCapacity bounds the number of messages kept per postbox.
func WithCapacity(n int) StoreOption {
	return func(s *Store) { s.maxPerBox = n }
}

// WithRetention sets the maximum message age enforced by Expire.
func WithRetention(d time.Duration) StoreOption {
	return func(s *Store) { s.retention = d }
}

// WithPush registers the urgent-message push hook.
func WithPush(fn PushFunc) StoreOption {
	return func(s *Store) { s.push = fn }
}

// NewStore returns an empty store. Defaults: real clock, 1024 messages per
// box, 72 h retention.
func NewStore(opts ...StoreOption) *Store {
	s := &Store{
		clock:     time.Now,
		maxPerBox: 1024,
		retention: 72 * time.Hour,
		boxes:     make(map[Address][]StoredMessage),
		lastSeen:  make(map[Address]int),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Put accepts a sealed message for the given recipient. If the message is
// urgent and the recipient's location is cached, the push hook fires.
func (s *Store) Put(to Address, sealed []byte, urgent bool) StoredMessage {
	s.mu.Lock()
	s.seq++
	msg := StoredMessage{
		Seq:      s.seq,
		To:       to,
		Sealed:   append([]byte(nil), sealed...),
		Urgent:   urgent,
		StoredAt: s.clock(),
	}
	box := append(s.boxes[to], msg)
	if s.maxPerBox > 0 && len(box) > s.maxPerBox {
		box = box[len(box)-s.maxPerBox:]
	}
	s.boxes[to] = box
	s.logPut(&msg)
	push := s.push
	last, hasLoc := s.lastSeen[to]
	s.mu.Unlock()

	if urgent && push != nil && hasLoc {
		push(msg, last)
	}
	return msg
}

// Retrieve returns all messages for addr with Seq greater than afterSeq, in
// order, and caches the caller's current building for push notifications
// (§3: "Bob's postbox caches location updates from his device that it
// receives whenever his device checks for new messages").
func (s *Store) Retrieve(addr Address, afterSeq uint64, currentBuilding int) []StoredMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastSeen[addr] = currentBuilding
	box := s.boxes[addr]
	i := sort.Search(len(box), func(i int) bool { return box[i].Seq > afterSeq })
	if i >= len(box) {
		return nil
	}
	out := make([]StoredMessage, len(box)-i)
	copy(out, box[i:])
	return out
}

// Ack removes messages for addr with Seq at or below seq (the device
// confirmed receipt).
func (s *Store) Ack(addr Address, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ackLocked(addr, seq) {
		s.logAck(addr, seq)
	}
}

// ackLocked removes acknowledged messages and reports whether anything was
// dropped; called with s.mu held (also by log replay, which must not
// re-log).
func (s *Store) ackLocked(addr Address, seq uint64) bool {
	box := s.boxes[addr]
	i := sort.Search(len(box), func(i int) bool { return box[i].Seq > seq })
	if i == 0 {
		return false
	}
	remaining := box[i:]
	if len(remaining) == 0 {
		delete(s.boxes, addr)
		return true
	}
	s.boxes[addr] = append([]StoredMessage(nil), remaining...)
	return true
}

// Expire drops messages older than the retention window. It returns the
// number dropped.
func (s *Store) Expire() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := s.clock().Add(-s.retention)
	dropped := 0
	for addr, box := range s.boxes {
		i := 0
		for i < len(box) && box[i].StoredAt.Before(cutoff) {
			i++
		}
		if i == 0 {
			continue
		}
		dropped += i
		if i == len(box) {
			delete(s.boxes, addr)
		} else {
			s.boxes[addr] = append([]StoredMessage(nil), box[i:]...)
		}
	}
	return dropped
}

// Totals reports the number of non-empty postboxes and total held
// messages (status dumps, tests).
func (s *Store) Totals() (boxes, messages int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, box := range s.boxes {
		if len(box) > 0 {
			boxes++
			messages += len(box)
		}
	}
	return boxes, messages
}

// Len returns the number of messages currently held for addr.
func (s *Store) Len(addr Address) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.boxes[addr])
}

// LastSeen returns the recipient's cached building, if any.
func (s *Store) LastSeen(addr Address) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.lastSeen[addr]
	return b, ok
}
