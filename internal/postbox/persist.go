// Crash-safe postbox persistence.
//
// An AP reboot is the defining event of the disaster the paper designs for
// (§6: agents must survive "months of unattended operation" on consumer
// hardware), so the messages a postbox holds must not live only in RAM.
// The store persists with the classic append-only log + snapshot pair:
//
//   - every accepted Put and every Ack appends one CRC-framed record to
//     <dir>/postbox.log (an O(message) write on the hot path — no rewrite);
//   - when the log grows past a threshold the store writes a snapshot of
//     its live state to <dir>/postbox.snap (write-temp, fsync, rename) and
//     truncates the log;
//   - OpenDir loads the snapshot, replays the log, and tolerates a torn
//     final record (the expected artifact of power loss mid-append) by
//     truncating the log at the last whole record.
//
// A SIGKILL loses nothing that reached the kernel; Sync() adds an fsync
// for power-loss durability at the caller's chosen cadence. The lastSeen
// location cache is deliberately not persisted: it is soft state that the
// next device check-in rebuilds.
package postbox

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"
)

const (
	logName  = "postbox.log"
	snapName = "postbox.snap"

	recPut byte = 1
	recAck byte = 2

	// recHeaderLen frames every log record: 4-byte length + 4-byte CRC.
	recHeaderLen = 8
	// maxRecLen bounds a single record so a corrupt length field cannot
	// drive a huge allocation at replay.
	maxRecLen = 1 << 20

	snapMagic   = "CMPB"
	snapVersion = 1
)

// DefaultCompactBytes is the log size that triggers automatic compaction.
const DefaultCompactBytes = 1 << 20

// ErrCorruptSnapshot is returned by OpenDir when the snapshot file exists
// but cannot be parsed. The log alone may still be replayable; callers that
// prefer availability over the snapshot's history can remove the file.
var ErrCorruptSnapshot = errors.New("postbox: corrupt snapshot")

// persister is the store's attachment to disk. Its methods are called with
// the store mutex held, so log order always matches seq order.
type persister struct {
	dir       string
	log       *os.File
	logBytes  int64
	compactAt int64
	err       error // first append/compact failure, surfaced by Sync
}

// WithCompactThreshold overrides the log size that triggers automatic
// compaction (0 keeps DefaultCompactBytes).
func WithCompactThreshold(n int64) StoreOption {
	return func(s *Store) { s.compactAt = n }
}

// OpenDir opens (or creates) a persistent store rooted at dir: it loads the
// snapshot if one exists, replays the append-only log, and leaves the log
// open for appending. Options apply before replay, so an injected clock and
// retention govern which replayed messages survive.
func OpenDir(dir string, opts ...StoreOption) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("postbox: open %s: %w", dir, err)
	}
	s := NewStore(opts...)
	p := &persister{dir: dir, compactAt: s.compactAt}
	if p.compactAt <= 0 {
		p.compactAt = DefaultCompactBytes
	}

	if snap, err := os.ReadFile(filepath.Join(dir, snapName)); err == nil {
		if err := s.applySnapshot(snap); err != nil {
			return nil, err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("postbox: read snapshot: %w", err)
	}

	logPath := filepath.Join(dir, logName)
	f, err := os.OpenFile(logPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("postbox: open log: %w", err)
	}
	good, err := s.replayLog(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop a torn tail so the next append starts at a record boundary.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("postbox: truncate torn log tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("postbox: seek log end: %w", err)
	}
	p.log = f
	p.logBytes = good
	s.persist = p
	return s, nil
}

// Dir returns the persistence directory, or "" for an in-memory store.
func (s *Store) Dir() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.persist == nil {
		return ""
	}
	return s.persist.dir
}

// Sync flushes the log to stable storage and reports the first persistence
// error encountered since the last Sync (append failures are otherwise
// absorbed so the hot path never blocks message acceptance).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.persist
	if p == nil {
		return nil
	}
	err := p.err
	p.err = nil
	if p.log != nil {
		if serr := p.log.Sync(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

// Close syncs and releases the log file. The store remains usable in
// memory; further mutations are no longer persisted.
func (s *Store) Close() error {
	err := s.Sync()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.persist == nil || s.persist.log == nil {
		return err
	}
	if cerr := s.persist.log.Close(); cerr != nil && err == nil {
		err = cerr
	}
	s.persist.log = nil
	s.persist = nil
	return err
}

// Compact writes a snapshot of the live state and truncates the log. It is
// also invoked automatically when the log exceeds the compaction threshold.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// LogBytes reports the current append-only log size (diagnostics).
func (s *Store) LogBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.persist == nil {
		return 0
	}
	return s.persist.logBytes
}

// --- record encoding -----------------------------------------------------

// appendRecord frames and appends one record; called with s.mu held.
func (p *persister) appendRecord(payload []byte) {
	if p == nil || p.log == nil {
		return
	}
	frame := make([]byte, 0, recHeaderLen+len(payload))
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	n, err := p.log.Write(frame)
	p.logBytes += int64(n)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("postbox: log append: %w", err)
	}
}

// putRecord encodes a stored message (also the snapshot's per-message
// encoding).
func putRecord(m *StoredMessage) []byte {
	b := []byte{recPut}
	b = append(b, m.To[:]...)
	b = binary.AppendUvarint(b, m.Seq)
	b = binary.AppendVarint(b, m.StoredAt.UnixNano())
	if m.Urgent {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Sealed)))
	return append(b, m.Sealed...)
}

// parsePut decodes a putRecord payload (after the type byte).
func parsePut(b []byte) (StoredMessage, error) {
	var m StoredMessage
	if len(b) < AddressLen {
		return m, errShortRecord
	}
	copy(m.To[:], b[:AddressLen])
	b = b[AddressLen:]
	seq, n := binary.Uvarint(b)
	if n <= 0 {
		return m, errShortRecord
	}
	b = b[n:]
	nano, n := binary.Varint(b)
	if n <= 0 {
		return m, errShortRecord
	}
	b = b[n:]
	if len(b) < 1 {
		return m, errShortRecord
	}
	m.Urgent = b[0] == 1
	b = b[1:]
	slen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) != slen {
		return m, errShortRecord
	}
	m.Seq = seq
	m.StoredAt = time.Unix(0, nano)
	m.Sealed = append([]byte(nil), b[n:]...)
	return m, nil
}

var errShortRecord = errors.New("postbox: short log record")

// logPut appends a put record and compacts if the log outgrew its
// threshold; called with s.mu held.
func (s *Store) logPut(m *StoredMessage) {
	if s.persist == nil {
		return
	}
	s.persist.appendRecord(putRecord(m))
	s.maybeCompactLocked()
}

// logAck appends an ack record; called with s.mu held.
func (s *Store) logAck(addr Address, seq uint64) {
	if s.persist == nil {
		return
	}
	b := []byte{recAck}
	b = append(b, addr[:]...)
	b = binary.AppendUvarint(b, seq)
	s.persist.appendRecord(b)
	s.maybeCompactLocked()
}

func (s *Store) maybeCompactLocked() {
	p := s.persist
	if p == nil || p.log == nil || p.logBytes < p.compactAt {
		return
	}
	if err := s.compactLocked(); err != nil && p.err == nil {
		p.err = err
	}
}

// --- replay --------------------------------------------------------------

// replayLog applies every whole record in f and returns the offset of the
// last record boundary (bytes past it are a torn tail to truncate).
func (s *Store) replayLog(f *os.File) (int64, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("postbox: read log: %w", err)
	}
	var off int64
	for int64(len(data))-off >= recHeaderLen {
		hdr := data[off : off+recHeaderLen]
		plen := int64(binary.BigEndian.Uint32(hdr[:4]))
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if plen > maxRecLen || off+recHeaderLen+plen > int64(len(data)) {
			break // torn or corrupt tail
		}
		payload := data[off+recHeaderLen : off+recHeaderLen+plen]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		if err := s.applyRecord(payload); err != nil {
			break
		}
		off += recHeaderLen + plen
	}
	return off, nil
}

// applyRecord replays one decoded record into the in-memory state.
func (s *Store) applyRecord(payload []byte) error {
	if len(payload) == 0 {
		return errShortRecord
	}
	switch payload[0] {
	case recPut:
		m, err := parsePut(payload[1:])
		if err != nil {
			return err
		}
		s.insertReplayed(m)
		return nil
	case recAck:
		b := payload[1:]
		if len(b) < AddressLen {
			return errShortRecord
		}
		var addr Address
		copy(addr[:], b[:AddressLen])
		seq, n := binary.Uvarint(b[AddressLen:])
		if n <= 0 {
			return errShortRecord
		}
		s.ackLocked(addr, seq)
		return nil
	default:
		return fmt.Errorf("postbox: unknown record type %d", payload[0])
	}
}

// insertReplayed re-inserts a persisted message, preserving its original
// seq and timestamp, honoring retention and the per-box capacity.
func (s *Store) insertReplayed(m StoredMessage) {
	if s.retention > 0 && s.clock().Sub(m.StoredAt) > s.retention {
		if m.Seq > s.seq {
			s.seq = m.Seq
		}
		return
	}
	box := append(s.boxes[m.To], m)
	if s.maxPerBox > 0 && len(box) > s.maxPerBox {
		box = box[len(box)-s.maxPerBox:]
	}
	s.boxes[m.To] = box
	if m.Seq > s.seq {
		s.seq = m.Seq
	}
}

// --- snapshot ------------------------------------------------------------

// snapshotBytes serializes the live state; called with s.mu held.
func (s *Store) snapshotBytes() []byte {
	out := append([]byte(nil), snapMagic...)
	out = append(out, snapVersion)
	out = binary.AppendUvarint(out, s.seq)
	total := 0
	for _, box := range s.boxes {
		total += len(box)
	}
	out = binary.AppendUvarint(out, uint64(total))
	for _, box := range s.boxes {
		for i := range box {
			rec := putRecord(&box[i])
			out = binary.AppendUvarint(out, uint64(len(rec)))
			out = append(out, rec...)
		}
	}
	return out
}

// applySnapshot loads snapshotBytes output into an empty store.
func (s *Store) applySnapshot(b []byte) error {
	if len(b) < len(snapMagic)+1 || string(b[:len(snapMagic)]) != snapMagic {
		return fmt.Errorf("%w: bad magic", ErrCorruptSnapshot)
	}
	if b[len(snapMagic)] != snapVersion {
		return fmt.Errorf("%w: version %d", ErrCorruptSnapshot, b[len(snapMagic)])
	}
	b = b[len(snapMagic)+1:]
	seq, n := binary.Uvarint(b)
	if n <= 0 {
		return fmt.Errorf("%w: truncated seq", ErrCorruptSnapshot)
	}
	b = b[n:]
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return fmt.Errorf("%w: truncated count", ErrCorruptSnapshot)
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		rlen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < rlen || rlen == 0 || rlen > maxRecLen {
			return fmt.Errorf("%w: truncated record %d", ErrCorruptSnapshot, i)
		}
		rec := b[n : n+int(rlen)]
		b = b[n+int(rlen):]
		if rec[0] != recPut {
			return fmt.Errorf("%w: record %d has type %d", ErrCorruptSnapshot, i, rec[0])
		}
		m, err := parsePut(rec[1:])
		if err != nil {
			return fmt.Errorf("%w: record %d: %v", ErrCorruptSnapshot, i, err)
		}
		s.insertReplayed(m)
	}
	if seq > s.seq {
		s.seq = seq
	}
	// Boxes were keyed by address during insert; re-sort each by seq in
	// case map iteration at snapshot time interleaved recipients.
	for addr, box := range s.boxes {
		sortBySeq(box)
		s.boxes[addr] = box
	}
	return nil
}

func sortBySeq(box []StoredMessage) {
	// Insertion sort: boxes are near-sorted (per-recipient order was
	// preserved; only cross-recipient interleaving shuffled anything).
	for i := 1; i < len(box); i++ {
		for j := i; j > 0 && box[j].Seq < box[j-1].Seq; j-- {
			box[j], box[j-1] = box[j-1], box[j]
		}
	}
}

// compactLocked writes the snapshot (write-temp, fsync, rename) and resets
// the log; called with s.mu held.
func (s *Store) compactLocked() error {
	p := s.persist
	if p == nil || p.log == nil {
		return nil
	}
	tmp := filepath.Join(p.dir, snapName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("postbox: compact: %w", err)
	}
	if _, err := f.Write(s.snapshotBytes()); err != nil {
		f.Close()
		return fmt.Errorf("postbox: compact write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("postbox: compact sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("postbox: compact close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(p.dir, snapName)); err != nil {
		return fmt.Errorf("postbox: compact rename: %w", err)
	}
	// The snapshot now owns all state; restart the log.
	if err := p.log.Truncate(0); err != nil {
		return fmt.Errorf("postbox: compact truncate log: %w", err)
	}
	if _, err := p.log.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("postbox: compact seek log: %w", err)
	}
	p.logBytes = 0
	return nil
}
