package adversary

import (
	"reflect"
	"testing"

	"citymesh/internal/geo"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
	"citymesh/internal/sim"
)

func testMesh(n int) *mesh.Mesh {
	city := &osm.City{Name: "adv"}
	for i := 0; i < n; i++ {
		c := geo.Pt(float64(i)*100, 0)
		fp := geo.Polygon{
			c.Add(geo.Pt(-2, -2)), c.Add(geo.Pt(2, -2)),
			c.Add(geo.Pt(2, 2)), c.Add(geo.Pt(-2, 2)),
		}
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding, Footprint: fp, Centroid: c,
		})
	}
	cfg := mesh.DefaultConfig()
	cfg.Density = 1e-12
	return mesh.Place(city, cfg)
}

func TestParseRoundTripsNames(t *testing.T) {
	for _, name := range Names() {
		b, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if b.String() != name {
			t.Errorf("Parse(%q) = %v, round-trips to %q", name, b, b.String())
		}
		if b == sim.BehaviorHonest {
			t.Errorf("Names() must list only misbehaviors, got %q", name)
		}
	}
	for _, off := range []string{"", "honest", "none", " Honest "} {
		if b, err := Parse(off); err != nil || b != sim.BehaviorHonest {
			t.Errorf("Parse(%q) = %v, %v; want honest, nil", off, b, err)
		}
	}
	if _, err := Parse("gremlin"); err == nil {
		t.Error("unknown behavior should not parse")
	}
}

func TestSelectIsSeededAndSized(t *testing.T) {
	m := testMesh(50)
	a1 := Select(m, sim.BehaviorGrayhole, 0.2, 7)
	a2 := Select(m, sim.BehaviorGrayhole, 0.2, 7)
	if !reflect.DeepEqual(a1.Adversary.Behaviors, a2.Adversary.Behaviors) {
		t.Fatal("same seed must select the same APs")
	}
	if got := a1.NumCompromised(); got != 10 {
		t.Errorf("20%% of 50 APs = %d compromised, want 10", got)
	}
	a3 := Select(m, sim.BehaviorGrayhole, 0.2, 8)
	if reflect.DeepEqual(a1.Adversary.Behaviors, a3.Adversary.Behaviors) {
		t.Error("different seeds should (overwhelmingly) differ")
	}
	if Select(m, sim.BehaviorGrayhole, 0, 7).NumCompromised() != 0 {
		t.Error("zero fraction must compromise nothing")
	}
	if Select(m, sim.BehaviorHonest, 0.5, 7).NumCompromised() != 0 {
		t.Error("honest behavior must compromise nothing")
	}
}

func TestApplyComposesWithFailures(t *testing.T) {
	m := testMesh(20)
	var cfg sim.Config
	cfg.FailedAPs = map[int]bool{3: true}

	a := Select(m, sim.BehaviorBlackhole, 0.25, 1)
	a.Apply(&cfg)
	if cfg.Adversary == nil || cfg.Adversary.NumByzantine() != 5 {
		t.Fatalf("Apply did not install the adversary: %+v", cfg.Adversary)
	}
	if !cfg.FailedAPs[3] {
		t.Error("Apply must not disturb the failure injection")
	}

	// A second Apply merges rather than replaces.
	b := Explicit(sim.BehaviorFlooder, []int{19})
	b.Apply(&cfg)
	if cfg.Adversary.BehaviorOf(19) != sim.BehaviorFlooder {
		t.Error("second Apply lost its behaviors")
	}
	if cfg.Adversary.NumByzantine() < 5 {
		t.Error("second Apply erased the first")
	}

	// Apply must not alias the assignment's own map.
	var cfg2 sim.Config
	a.Apply(&cfg2)
	cfg2.Adversary.Behaviors[999] = sim.BehaviorFlooder
	if a.Adversary.BehaviorOf(999) != sim.BehaviorHonest {
		t.Error("Apply aliased the assignment's behavior map")
	}
}

func TestCombineMergesBehaviorsAndKnobs(t *testing.T) {
	g := Select(testMesh(30), sim.BehaviorGrayhole, 0.1, 3)
	g.Adversary.DropProb = 0.9
	f := Explicit(sim.BehaviorFlooder, []int{29})
	f.Adversary.InjectRate = 7

	c := Combine(g, f)
	if c.Adversary.NumByzantine() != g.NumCompromised()+1 {
		t.Errorf("combined %d Byzantine APs, want %d", c.Adversary.NumByzantine(), g.NumCompromised()+1)
	}
	if c.Adversary.DropProb != 0.9 || c.Adversary.InjectRate != 7 {
		t.Errorf("knobs not merged: %+v", c.Adversary)
	}
	if c.Desc == "" || c.Desc == "no adversary" {
		t.Errorf("description lost: %q", c.Desc)
	}
}

func TestDefaultDefense(t *testing.T) {
	d := DefaultDefense(64)
	if d.MaxTTL != 64 || !d.TamperCheck || d.NeighborRate <= 0 || d.MaxGeocastRadius <= 0 {
		t.Errorf("DefaultDefense(64) = %+v: every layer should be armed", d)
	}
	if !d.Any() {
		t.Error("DefaultDefense must register as enabled")
	}
	var cfg sim.Config
	cfg.Defense = d
	if err := cfg.Validate(); err != nil {
		t.Errorf("default defense fails validation: %v", err)
	}
}
