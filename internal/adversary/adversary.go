// Package adversary realizes Byzantine misbehavior assignments against a
// mesh, the way internal/faults realizes crash-fault injections: a seeded
// fraction (or explicit set) of APs gets one of the simulator's misbehavior
// policies, and the resulting Assignment applies onto a sim.Config where it
// composes with any FailedAPs set and any FailureSchedule — floods and
// liars coexist, and a flooded liar is simply down.
//
// The package also owns the recommended receiver defense stack
// (DefaultDefense) and the behavior-name parsing shared by experiment
// tables and CLI flags.
package adversary

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"citymesh/internal/mesh"
	"citymesh/internal/sim"
)

// Names lists the assignable misbehaviors in a stable order, as accepted by
// Parse — flag help and the byzantine experiment's sweep axis.
func Names() []string {
	return []string{
		"blackhole", "grayhole", "replayer", "corruptor",
		"ttlreset", "spoofer", "flooder",
	}
}

// Parse maps a behavior name (as printed by sim.APBehavior.String) to its
// value. "honest" and "" parse to BehaviorHonest so a zero flag disables
// the adversary cleanly.
func Parse(name string) (sim.APBehavior, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "honest", "none":
		return sim.BehaviorHonest, nil
	case "blackhole":
		return sim.BehaviorBlackhole, nil
	case "grayhole":
		return sim.BehaviorGrayhole, nil
	case "replayer":
		return sim.BehaviorReplayer, nil
	case "corruptor":
		return sim.BehaviorCorruptor, nil
	case "ttlreset":
		return sim.BehaviorTTLReset, nil
	case "spoofer":
		return sim.BehaviorSpoofer, nil
	case "flooder":
		return sim.BehaviorFlooder, nil
	default:
		return sim.BehaviorHonest, fmt.Errorf("adversary: unknown behavior %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
}

// Assignment is a realized adversary: the behavior map ready to apply onto
// a sim.Config, plus a human-readable description for tables and logs.
type Assignment struct {
	Adversary *sim.Adversary
	Desc      string
}

// Apply installs the assignment onto cfg, merging with any adversary
// already present (the incoming behaviors win on overlap). Knobs on the
// incoming Adversary override zero knobs already set, never the reverse, so
// Combine and repeated Apply agree.
func (a Assignment) Apply(cfg *sim.Config) {
	if a.Adversary == nil || len(a.Adversary.Behaviors) == 0 {
		return
	}
	if cfg.Adversary == nil {
		adv := *a.Adversary
		adv.Behaviors = make(map[int]sim.APBehavior, len(a.Adversary.Behaviors))
		for ap, b := range a.Adversary.Behaviors {
			adv.Behaviors[ap] = b
		}
		cfg.Adversary = &adv
		return
	}
	merged := cfg.Adversary
	if merged.Behaviors == nil {
		merged.Behaviors = make(map[int]sim.APBehavior, len(a.Adversary.Behaviors))
	}
	for ap, b := range a.Adversary.Behaviors {
		merged.Behaviors[ap] = b
	}
	mergeKnobs(merged, a.Adversary)
}

// mergeKnobs copies src's non-zero knobs over dst's zero ones.
func mergeKnobs(dst, src *sim.Adversary) {
	if dst.DropProb == 0 {
		dst.DropProb = src.DropProb
	}
	if dst.ReplayInterval == 0 {
		dst.ReplayInterval = src.ReplayInterval
	}
	if dst.ReplayHorizon == 0 {
		dst.ReplayHorizon = src.ReplayHorizon
	}
	if dst.ReplayBuffer == 0 {
		dst.ReplayBuffer = src.ReplayBuffer
	}
	if dst.ResetTTL == 0 {
		dst.ResetTTL = src.ResetTTL
	}
	if dst.InjectRate == 0 {
		dst.InjectRate = src.InjectRate
	}
	if dst.InjectHorizon == 0 {
		dst.InjectHorizon = src.InjectHorizon
	}
	if dst.ForgedTTL == 0 {
		dst.ForgedTTL = src.ForgedTTL
	}
	if dst.GeocastRadius == 0 {
		dst.GeocastRadius = src.GeocastRadius
	}
}

// NumCompromised counts the assignment's Byzantine APs.
func (a Assignment) NumCompromised() int { return a.Adversary.NumByzantine() }

// Select compromises a seeded fraction of the mesh's APs with behavior b.
// The same (mesh, b, frac, seed) always selects the same APs; the selection
// stream is independent of any faults injection run with another seed.
func Select(m *mesh.Mesh, b sim.APBehavior, frac float64, seed int64) Assignment {
	n := m.NumAPs()
	k := targetCount(n, frac)
	if b == sim.BehaviorHonest || k == 0 {
		return Assignment{Adversary: &sim.Adversary{}, Desc: "no adversary"}
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	behaviors := make(map[int]sim.APBehavior, k)
	for _, ap := range perm[:k] {
		behaviors[ap] = b
	}
	return Assignment{
		Adversary: &sim.Adversary{Behaviors: behaviors},
		Desc:      fmt.Sprintf("%s: %d/%d APs (p=%.2f)", b, k, n, frac),
	}
}

// Explicit compromises exactly the given APs with behavior b.
func Explicit(b sim.APBehavior, aps []int) Assignment {
	behaviors := make(map[int]sim.APBehavior, len(aps))
	if b != sim.BehaviorHonest {
		for _, ap := range aps {
			behaviors[ap] = b
		}
	}
	sorted := append([]int(nil), aps...)
	sort.Ints(sorted)
	return Assignment{
		Adversary: &sim.Adversary{Behaviors: behaviors},
		Desc:      fmt.Sprintf("%s: explicit %v", b, sorted),
	}
}

// Combine merges assignments into one (later assignments win on
// overlapping APs; the first non-zero value of each knob wins).
func Combine(as ...Assignment) Assignment {
	out := Assignment{Adversary: &sim.Adversary{Behaviors: make(map[int]sim.APBehavior)}}
	var descs []string
	for _, a := range as {
		if a.Adversary == nil {
			continue
		}
		for ap, b := range a.Adversary.Behaviors {
			out.Adversary.Behaviors[ap] = b
		}
		mergeKnobs(out.Adversary, a.Adversary)
		if len(a.Adversary.Behaviors) > 0 {
			descs = append(descs, a.Desc)
		}
	}
	out.Desc = strings.Join(descs, " + ")
	if out.Desc == "" {
		out.Desc = "no adversary"
	}
	return out
}

// DefaultDefense is the recommended honest-receiver stack for a deployment
// whose scoped floods are bounded by netTTL: reject TTLs no honest frame
// can carry, re-validate frame integrity, throttle per-neighbor frame
// storms, and refuse metro-scale geocast claims.
func DefaultDefense(netTTL uint8) sim.Defense {
	return sim.Defense{
		MaxTTL:           netTTL,
		TamperCheck:      true,
		NeighborRate:     8,
		NeighborBurst:    16,
		MaxGeocastRadius: 2000,
	}
}

// targetCount converts a fraction into an AP count, clamped to [0, n]
// (mirrors internal/faults).
func targetCount(n int, frac float64) int {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return n
	}
	return int(math.Round(frac * float64(n)))
}
