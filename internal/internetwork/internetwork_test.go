package internetwork

import (
	"math"
	"reflect"
	"testing"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/sim"
)

// region builds a tiny test region with ngw gateways chosen inside the
// largest mesh island, so legs between island buildings can deliver.
func region(t testing.TB, id RegionID, seed int64, ngw int) *Region {
	t.Helper()
	n, err := core.FromSpec(citygen.SmallTestSpec(seed), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	island := islandBuildings(n)
	if len(island) < ngw {
		t.Fatalf("island has only %d buildings, need %d gateways", len(island), ngw)
	}
	return &Region{ID: id, Net: n, Gateways: island[:ngw]}
}

// islandBuildings lists the buildings of the largest mesh island.
func islandBuildings(n *core.Network) []int {
	islands := n.Mesh.Islands()
	if len(islands) == 0 {
		return nil
	}
	var out []int
	for b := 0; b < n.City.NumBuildings(); b++ {
		aps := n.Mesh.APsInBuilding(b)
		if len(aps) > 0 && n.Mesh.ComponentOf(int(aps[0])) == islands[0].Component {
			out = append(out, b)
		}
	}
	return out
}

// pickRouted returns a building in the region's main island, distinct from
// its gateways, with plannable routes to and from every gateway.
func pickRouted(t testing.TB, r *Region) int {
	t.Helper()
	isGW := map[int]bool{}
	for _, g := range r.Gateways {
		isGW[g] = true
	}
	for _, b := range islandBuildings(r.Net) {
		if isGW[b] {
			continue
		}
		ok := true
		for _, g := range r.Gateways {
			if _, err := r.Net.PlanRoute(b, g); err != nil {
				ok = false
				break
			}
			if _, err := r.Net.PlanRoute(g, b); err != nil {
				ok = false
				break
			}
		}
		if ok {
			return b
		}
	}
	t.Skip("no gateway-routable building")
	return -1
}

func buildInternetwork(t testing.TB) (*Internetwork, *Region, *Region, *Region) {
	t.Helper()
	in := New()
	ra := region(t, "boston", 211, 1)
	rb := region(t, "providence", 212, 2)
	rc := region(t, "worcester", 213, 1)
	for _, r := range []*Region{ra, rb, rc} {
		if err := in.AddRegion(r); err != nil {
			t.Fatal(err)
		}
	}
	// boston <-fiber-> worcester <-satellite-> providence
	if err := in.AddLink(Link{A: "boston", B: "worcester", Kind: LinkFiber}); err != nil {
		t.Fatal(err)
	}
	if err := in.AddLink(Link{A: "worcester", B: "providence", Kind: LinkSatellite}); err != nil {
		t.Fatal(err)
	}
	return in, ra, rb, rc
}

func TestAddValidation(t *testing.T) {
	in := New()
	if err := in.AddRegion(nil); err == nil {
		t.Error("nil region accepted")
	}
	r := region(t, "x", 214, 1)
	if err := in.AddRegion(r); err != nil {
		t.Fatal(err)
	}
	if err := in.AddRegion(r); err == nil {
		t.Error("duplicate region accepted")
	}
	bad := region(t, "y", 215, 1)
	bad.Gateways = []int{1 << 20}
	if err := in.AddRegion(bad); err == nil {
		t.Error("out-of-range gateway accepted")
	}
	dup := region(t, "z", 216, 1)
	dup.Gateways = []int{dup.Gateways[0], dup.Gateways[0]}
	if err := in.AddRegion(dup); err == nil {
		t.Error("duplicate gateways accepted")
	}
	if err := in.AddLink(Link{A: "x", B: "nope"}); err == nil {
		t.Error("link to unknown region accepted")
	}
	if err := in.AddLink(Link{A: "x", B: "x"}); err == nil {
		t.Error("self link accepted")
	}
}

func TestGatewayNormalization(t *testing.T) {
	in := New()
	// Gateways takes precedence and rewrites the legacy Gateway field.
	r := region(t, "multi", 217, 3)
	r.Gateway = 1 << 10 // garbage; must be overwritten by Gateways[0]
	if err := in.AddRegion(r); err != nil {
		t.Fatal(err)
	}
	if r.Gateway != r.Gateways[0] {
		t.Errorf("Gateway = %d, want primary %d", r.Gateway, r.Gateways[0])
	}
	// Legacy single-Gateway regions get a one-entry Gateways list.
	legacy := region(t, "legacy-src", 218, 1)
	single := &Region{ID: "legacy", Net: legacy.Net, Gateway: legacy.Gateways[0]}
	single.Gateways = nil
	if err := in.AddRegion(single); err != nil {
		t.Fatal(err)
	}
	if len(single.Gateways) != 1 || single.Gateways[0] != single.Gateway {
		t.Errorf("Gateways = %v, want [%d]", single.Gateways, single.Gateway)
	}
}

func TestRegionPath(t *testing.T) {
	in, _, _, _ := buildInternetwork(t)
	path, latency, err := in.RegionPath("boston", "providence")
	if err != nil {
		t.Fatal(err)
	}
	want := []RegionID{"boston", "worcester", "providence"}
	if !reflect.DeepEqual(path, want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	if latency < 0.6 { // satellite leg dominates
		t.Errorf("latency = %v", latency)
	}
	p, l, err := in.RegionPath("boston", "boston")
	if err != nil || len(p) != 1 || l != 0 {
		t.Errorf("self path = %v, %v, %v", p, l, err)
	}
	if _, _, err := in.RegionPath("boston", "nowhere"); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestRegionPathPrefersLowLatency(t *testing.T) {
	in, _, _, _ := buildInternetwork(t)
	// Direct satellite boston<->providence (0.6) beats fiber+satellite
	// (0.61).
	if err := in.AddLink(Link{A: "boston", B: "providence", Kind: LinkSatellite}); err != nil {
		t.Fatal(err)
	}
	path, _, err := in.RegionPath("boston", "providence")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Errorf("path = %v, want direct", path)
	}
}

func TestFailLinkFlap(t *testing.T) {
	in, _, _, _ := buildInternetwork(t)
	// down -> up -> down: path state must track every transition.
	if n := in.FailLink("worcester", "providence", true); n != 1 {
		t.Fatalf("failed %d links", n)
	}
	if _, _, err := in.RegionPath("boston", "providence"); err == nil {
		t.Error("partitioned inter-network still routes")
	}
	if n := in.FailLink("worcester", "providence", false); n != 1 {
		t.Fatalf("restored %d links", n)
	}
	if _, _, err := in.RegionPath("boston", "providence"); err != nil {
		t.Errorf("restored path: %v", err)
	}
	if n := in.FailLink("worcester", "providence", true); n != 1 {
		t.Fatalf("re-failed %d links", n)
	}
	if _, _, err := in.RegionPath("boston", "providence"); err == nil {
		t.Error("re-failed link still routes")
	}
	// Idempotence: failing an already-down link changes nothing.
	if n := in.FailLink("worcester", "providence", true); n != 0 {
		t.Errorf("re-failing a down link changed %d links", n)
	}
}

// diamond builds a 4-region graph with two equal-cost paths a-b-d and
// a-c-d (every link identical latency and bandwidth).
func diamond(t testing.TB) *Internetwork {
	t.Helper()
	in := New()
	for i, id := range []RegionID{"a", "b", "c", "d"} {
		if err := in.AddRegion(region(t, id, 230+int64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []Link{
		{A: "a", B: "b"}, {A: "b", B: "d"},
		{A: "a", B: "c"}, {A: "c", B: "d"},
	} {
		l.LatencySeconds = 0.01
		l.BandwidthMbps = 1000
		if err := in.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	return in
}

func TestSeededTiebreakDeterminism(t *testing.T) {
	in := diamond(t)
	seen := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		first, _, err := in.RegionPathSeeded("a", "d", seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(first) != 3 {
			t.Fatalf("seed %d: path %v, want length 3", seed, first)
		}
		// Same seed, same path — every time.
		for rep := 0; rep < 3; rep++ {
			again, _, err := in.RegionPathSeeded("a", "d", seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("seed %d: path flapped %v -> %v", seed, first, again)
			}
		}
		seen[string(first[1])] = true
	}
	// The seed genuinely selects among the equal-cost alternatives.
	if len(seen) < 2 {
		t.Errorf("20 seeds never varied the equal-cost choice: %v", seen)
	}
}

func TestInterRegionSend(t *testing.T) {
	in, ra, rb, _ := buildInternetwork(t)
	srcB := pickRouted(t, ra)
	dstB := pickRouted(t, rb)

	res, err := in.Send(
		Address{Region: "boston", Building: srcB},
		Address{Region: "providence", Building: dstB},
		[]byte("inter-city hello"), sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("send failed (%v): legs %+v", res.Failure, res.Legs)
	}
	want := []RegionID{"boston", "worcester", "providence"}
	if !reflect.DeepEqual(res.RegionPath, want) {
		t.Fatalf("region path = %v", res.RegionPath)
	}
	if res.LinkHops != 2 {
		t.Errorf("link hops = %d", res.LinkHops)
	}
	// The transit region (one gateway) is a passthrough leg.
	foundPass := false
	for _, leg := range res.Legs {
		if leg.Region == "worcester" {
			if leg.Reason != LegPassthrough || leg.Src != leg.Dst {
				t.Errorf("transit leg not a passthrough: %+v", leg)
			}
			foundPass = true
		}
	}
	if !foundPass {
		t.Error("no transit leg recorded")
	}
	if res.TotalBroadcasts == 0 {
		t.Error("delivered with no broadcasts")
	}
	lat, ok := res.EndToEndLatency()
	if !ok || lat < res.LinkLatency {
		t.Errorf("latency = %v ok=%v, link latency %v", lat, ok, res.LinkLatency)
	}
	if res.Failure != FailNone {
		t.Errorf("Failure = %v on a delivered send", res.Failure)
	}
	if res.PrefixBits <= 0 || res.PrefixBits > 64 {
		t.Errorf("prefix bits = %d, want small and positive", res.PrefixBits)
	}
}

func TestSendDeterministic(t *testing.T) {
	in, ra, rb, _ := buildInternetwork(t)
	srcB := pickRouted(t, ra)
	dstB := pickRouted(t, rb)
	src := Address{Region: "boston", Building: srcB}
	dst := Address{Region: "providence", Building: dstB}
	a, err := in.Send(src, dst, []byte("x"), sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := in.Send(src, dst, []byte("x"), sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same send differed:\n%+v\nvs\n%+v", a, b)
	}
}

func TestSendSameRegion(t *testing.T) {
	in, ra, _, _ := buildInternetwork(t)
	b := pickRouted(t, ra)
	gw := ra.Gateways[0]
	res, err := in.Send(
		Address{Region: "boston", Building: b},
		Address{Region: "boston", Building: gw},
		nil, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RegionPath) != 1 || res.LinkLatency != 0 || res.LinkHops != 0 {
		t.Errorf("same-region path = %v, latency %v", res.RegionPath, res.LinkLatency)
	}
	if res.PrefixBits != 0 {
		t.Errorf("same-region send carries a region prefix (%d bits)", res.PrefixBits)
	}
	// Degenerate same-building send: a trivially delivered passthrough.
	res, err = in.Send(
		Address{Region: "boston", Building: b},
		Address{Region: "boston", Building: b},
		nil, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || len(res.Legs) != 1 || res.Legs[0].Reason != LegPassthrough {
		t.Errorf("same-building send: %+v", res)
	}
}

func TestSendUnknownRegionAndBadBuilding(t *testing.T) {
	in, _, _, _ := buildInternetwork(t)
	if _, err := in.Send(Address{Region: "mars"}, Address{Region: "boston"}, nil, sim.DefaultConfig()); err == nil {
		t.Error("unknown src region accepted")
	}
	if _, err := in.Send(Address{Region: "boston"}, Address{Region: "mars"}, nil, sim.DefaultConfig()); err == nil {
		t.Error("unknown dst region accepted")
	}
	if _, err := in.Send(
		Address{Region: "boston", Building: 1 << 20},
		Address{Region: "providence", Building: 0},
		nil, sim.DefaultConfig()); err == nil {
		t.Error("out-of-range building accepted")
	}
}

func TestSendNoLinkPathIsReportedNotSwallowed(t *testing.T) {
	in, ra, rb, _ := buildInternetwork(t)
	in.FailLink("worcester", "providence", true)
	res, err := in.Send(
		Address{Region: "boston", Building: ra.Gateways[0]},
		Address{Region: "providence", Building: rb.Gateways[0]},
		nil, sim.DefaultConfig())
	if err != nil {
		t.Fatalf("network partition must be a result, not an error: %v", err)
	}
	if res.Delivered || res.Failure != FailNoLinkPath {
		t.Errorf("partitioned send: delivered=%v failure=%v", res.Delivered, res.Failure)
	}
	if _, ok := res.EndToEndLatency(); ok {
		t.Error("undelivered send reported a latency")
	}
}

func TestEndToEndLatencyUndeliveredIsNaN(t *testing.T) {
	lat, ok := (SendResult{}).EndToEndLatency()
	if ok || !math.IsNaN(lat) {
		t.Errorf("EndToEndLatency on undelivered = %v, %v; want NaN, false", lat, ok)
	}
}

func TestDeadPrimaryGatewayFailover(t *testing.T) {
	// Regression for the flat predecessor's single-gateway fragility: a
	// dead primary gateway AP killed every leg through the region
	// silently. Here providence's primary gateway APs are down at the sim
	// level; delivery must fail over to the secondary gateway, and the
	// result must surface which gateway each leg used.
	in, ra, rb, _ := buildInternetwork(t)
	g0, g1 := rb.Gateways[0], rb.Gateways[1]
	simCfg := sim.DefaultConfig()
	simCfg.FailedAPs = map[int]bool{}
	for _, ap := range rb.Net.Mesh.APsInBuilding(g0) {
		simCfg.FailedAPs[int(ap)] = true
	}
	// Source sits on boston's gateway so the boston leg is a passthrough
	// and the FailedAPs indices only ever run against providence's mesh.
	dstB := pickRouted(t, rb)
	res, err := in.Send(
		Address{Region: "boston", Building: ra.Gateways[0]},
		Address{Region: "providence", Building: dstB},
		nil, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	var triedPrimary, usedSecondary bool
	for _, leg := range res.Legs {
		if leg.Region != "providence" {
			continue
		}
		if leg.Gateway == g0 {
			triedPrimary = true
			if leg.Delivered {
				t.Errorf("leg through dead gateway delivered: %+v", leg)
			}
		}
		if leg.Gateway == g1 && leg.Delivered {
			usedSecondary = true
		}
	}
	if !triedPrimary {
		t.Error("failover never tried the primary gateway first")
	}
	if !res.Delivered {
		t.Fatalf("failover did not deliver (%v): legs %+v", res.Failure, res.Legs)
	}
	if !usedSecondary {
		t.Errorf("delivered without the secondary gateway: %+v", res.Legs)
	}
	if res.GatewayFailovers == 0 {
		t.Error("GatewayFailovers not counted")
	}
}

func TestFailGatewaySkipsExplicitlyDeadGateways(t *testing.T) {
	in, ra, rb, _ := buildInternetwork(t)
	g0, g1 := rb.Gateways[0], rb.Gateways[1]
	if n := in.FailGateway("providence", g0, true); n != 1 {
		t.Fatalf("FailGateway changed %d", n)
	}
	if n := in.FailGateway("providence", g0, true); n != 0 {
		t.Errorf("re-failing changed %d", n)
	}
	if n := in.FailGateway("providence", 1<<20, true); n != 0 {
		t.Errorf("non-gateway building changed %d", n)
	}
	if n := in.FailGateway("nowhere", g0, true); n != 0 {
		t.Errorf("unknown region changed %d", n)
	}
	dstB := pickRouted(t, rb)
	res, err := in.Send(
		Address{Region: "boston", Building: ra.Gateways[0]},
		Address{Region: "providence", Building: dstB},
		nil, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, leg := range res.Legs {
		if leg.Region == "providence" && leg.Gateway == g0 {
			t.Errorf("explicitly failed gateway still used: %+v", leg)
		}
	}
	if res.Delivered && res.GatewayFailovers == 0 {
		t.Error("delivery through secondary not counted as failover")
	}
	// Restore: the primary is preferred again.
	if n := in.FailGateway("providence", g0, false); n != 1 {
		t.Fatalf("restore changed %d", n)
	}
	_ = g1
}

func TestTransitRerouteAroundDeadRegion(t *testing.T) {
	// Diamond a-b-d / a-c-d with the b path cheaper: the planned path runs
	// through b. Killing b's only gateway makes b untraversable, so the
	// send must ban b, re-plan at level 1, and deliver via c.
	in := New()
	for i, id := range []RegionID{"a", "b", "c", "d"} {
		if err := in.AddRegion(region(t, id, 240+int64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []Link{
		{A: "a", B: "b", LatencySeconds: 0.01},
		{A: "b", B: "d", LatencySeconds: 0.01},
		{A: "a", B: "c", LatencySeconds: 0.02},
		{A: "c", B: "d", LatencySeconds: 0.02},
	} {
		if err := in.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	rb, _ := in.Region("b")
	in.FailGateway("b", rb.Gateways[0], true)

	ra, _ := in.Region("a")
	rd, _ := in.Region("d")
	dstB := pickRouted(t, rd)
	res, err := in.Send(
		Address{Region: "a", Building: ra.Gateways[0]},
		Address{Region: "d", Building: dstB},
		nil, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.PlannedPath[1] != "b" {
		t.Fatalf("planned path %v should run through b", res.PlannedPath)
	}
	if res.Reroutes == 0 {
		t.Errorf("no reroute recorded: %+v", res)
	}
	if !res.Delivered {
		t.Fatalf("reroute did not deliver (%v): legs %+v", res.Failure, res.Legs)
	}
	via := map[RegionID]bool{}
	for _, id := range res.RegionPath {
		via[id] = true
	}
	if !via["c"] || res.RegionPath[len(res.RegionPath)-1] != "d" {
		t.Errorf("rerouted path = %v, want via c to d", res.RegionPath)
	}
}

func TestLinkKindString(t *testing.T) {
	for k, want := range map[LinkKind]string{
		LinkSatellite: "satellite", LinkFiber: "fiber",
		LinkHFRadio: "hf-radio", LinkKind(9): "unknown",
	} {
		if k.String() != want {
			t.Errorf("String(%d) = %q", k, k.String())
		}
	}
}

func TestReasonStrings(t *testing.T) {
	for r, want := range map[LegReason]string{
		LegOK: "ok", LegPassthrough: "passthrough",
		LegPlanFailed: "plan-failed", LegMeshUndelivered: "mesh-undelivered",
		LegReason(9): "leg-reason(9)",
	} {
		if r.String() != want {
			t.Errorf("LegReason(%d) = %q, want %q", r, r.String(), want)
		}
	}
	for c, want := range map[FailCause]string{
		FailNone: "none", FailMeshUndelivered: "mesh-undelivered",
		FailNoLinkPath: "no-link-path", FailNoGatewayPath: "no-gateway-path",
		FailRerouteExhausted: "reroute-exhausted", FailCause(9): "fail-cause(9)",
	} {
		if c.String() != want {
			t.Errorf("FailCause(%d) = %q, want %q", c, c.String(), want)
		}
	}
}

func TestAccessorsAndStateBytes(t *testing.T) {
	in, ra, rb, _ := buildInternetwork(t)
	if in.Regions() != 3 {
		t.Errorf("Regions = %d", in.Regions())
	}
	if len(in.Links()) != 2 {
		t.Errorf("Links = %d", len(in.Links()))
	}
	if r, ok := in.Region("boston"); !ok || r != ra {
		t.Error("Region lookup failed")
	}
	if _, ok := in.Region("nope"); ok {
		t.Error("unknown region resolved")
	}
	if i, ok := in.Index("worcester"); !ok || i != 2 {
		t.Errorf("Index(worcester) = %d, %v", i, ok)
	}
	ids := in.RegionIDs()
	if !reflect.DeepEqual(ids, []RegionID{"boston", "providence", "worcester"}) {
		t.Errorf("RegionIDs = %v", ids)
	}

	// The hierarchy's state argument, in miniature: ordinary-AP state is a
	// few bytes and does not grow when regions are added; the flat
	// baseline carries every building in the federation.
	perAP := in.PerAPL1StateBytes("boston")
	if perAP <= 0 || perAP > 64 {
		t.Errorf("per-AP level-1 state = %d bytes", perAP)
	}
	if got := in.PerAPL1StateBytes("providence"); got != 4+8*len(rb.Gateways) {
		t.Errorf("providence per-AP state = %d", got)
	}
	if in.PerAPL1StateBytes("nope") != 0 {
		t.Error("unknown region has state")
	}
	gw := in.GatewayStateBytes()
	extra := region(t, "extra", 219, 1)
	if err := in.AddRegion(extra); err != nil {
		t.Fatal(err)
	}
	if err := in.AddLink(Link{A: "extra", B: "boston", Kind: LinkFiber}); err != nil {
		t.Fatal(err)
	}
	if in.PerAPL1StateBytes("boston") != perAP {
		t.Error("ordinary-AP state grew with the federation")
	}
	if in.GatewayStateBytes() <= gw {
		t.Error("gateway summary state did not grow with the federation")
	}
	if in.FlatPerAPStateBytes() <= in.GatewayStateBytes() {
		t.Errorf("flat baseline (%d) should dwarf the summary (%d)",
			in.FlatPerAPStateBytes(), in.GatewayStateBytes())
	}
}
