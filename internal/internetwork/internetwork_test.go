package internetwork

import (
	"testing"

	"citymesh/internal/citygen"
	"citymesh/internal/core"
	"citymesh/internal/sim"
)

func region(t testing.TB, id RegionID, seed int64) *Region {
	t.Helper()
	n, err := core.FromSpec(citygen.SmallTestSpec(seed), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Gateway: a building in the biggest mesh island so legs can deliver.
	gw := 0
	best := -1
	islands := n.Mesh.Islands()
	if len(islands) > 0 {
		for b := 0; b < n.City.NumBuildings(); b++ {
			aps := n.Mesh.APsInBuilding(b)
			if len(aps) == 0 {
				continue
			}
			if n.Mesh.ComponentOf(int(aps[0])) == islands[0].Component {
				gw = b
				best = b
				break
			}
		}
	}
	_ = best
	return &Region{ID: id, Net: n, Gateway: gw}
}

func buildInternetwork(t testing.TB) (*Internetwork, *Region, *Region, *Region) {
	t.Helper()
	in := New()
	ra := region(t, "boston", 211)
	rb := region(t, "providence", 212)
	rc := region(t, "worcester", 213)
	for _, r := range []*Region{ra, rb, rc} {
		if err := in.AddRegion(r); err != nil {
			t.Fatal(err)
		}
	}
	// boston <-fiber-> worcester <-satellite-> providence
	if err := in.AddLink(Link{A: "boston", B: "worcester", Kind: LinkFiber}); err != nil {
		t.Fatal(err)
	}
	if err := in.AddLink(Link{A: "worcester", B: "providence", Kind: LinkSatellite}); err != nil {
		t.Fatal(err)
	}
	return in, ra, rb, rc
}

func TestAddValidation(t *testing.T) {
	in := New()
	if err := in.AddRegion(nil); err == nil {
		t.Error("nil region accepted")
	}
	r := region(t, "x", 214)
	if err := in.AddRegion(r); err != nil {
		t.Fatal(err)
	}
	if err := in.AddRegion(r); err == nil {
		t.Error("duplicate region accepted")
	}
	bad := region(t, "y", 215)
	bad.Gateway = 1 << 20
	if err := in.AddRegion(bad); err == nil {
		t.Error("out-of-range gateway accepted")
	}
	if err := in.AddLink(Link{A: "x", B: "nope"}); err == nil {
		t.Error("link to unknown region accepted")
	}
	if err := in.AddLink(Link{A: "x", B: "x"}); err == nil {
		t.Error("self link accepted")
	}
}

func TestRegionPath(t *testing.T) {
	in, _, _, _ := buildInternetwork(t)
	path, latency, err := in.RegionPath("boston", "providence")
	if err != nil {
		t.Fatal(err)
	}
	want := []RegionID{"boston", "worcester", "providence"}
	if len(path) != 3 {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if latency < 0.6 { // satellite leg dominates
		t.Errorf("latency = %v", latency)
	}
	// Same region: trivial path.
	p, l, err := in.RegionPath("boston", "boston")
	if err != nil || len(p) != 1 || l != 0 {
		t.Errorf("self path = %v, %v, %v", p, l, err)
	}
	if _, _, err := in.RegionPath("boston", "nowhere"); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestRegionPathPrefersLowLatency(t *testing.T) {
	in, _, _, _ := buildInternetwork(t)
	// Add a direct satellite boston<->providence; the two-hop
	// fiber+satellite path costs 0.61, the direct satellite 0.6 — direct
	// wins.
	if err := in.AddLink(Link{A: "boston", B: "providence", Kind: LinkSatellite}); err != nil {
		t.Fatal(err)
	}
	path, _, err := in.RegionPath("boston", "providence")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Errorf("path = %v, want direct", path)
	}
}

func TestFailLinkReroutesOrPartitions(t *testing.T) {
	in, _, _, _ := buildInternetwork(t)
	if n := in.FailLink("worcester", "providence", true); n != 1 {
		t.Fatalf("failed %d links", n)
	}
	if _, _, err := in.RegionPath("boston", "providence"); err == nil {
		t.Error("partitioned inter-network still routes")
	}
	// Restore.
	if n := in.FailLink("worcester", "providence", false); n != 1 {
		t.Fatalf("restored %d links", n)
	}
	if _, _, err := in.RegionPath("boston", "providence"); err != nil {
		t.Errorf("restored path: %v", err)
	}
}

func TestInterRegionSend(t *testing.T) {
	in, ra, rb, _ := buildInternetwork(t)

	// Find a source building in boston reachable from its gateway, and a
	// destination in providence reachable from its gateway.
	pick := func(r *Region) int {
		pairs, err := r.Net.RandomPairs(3, 200)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			b := p[0]
			if b == r.Gateway || !r.Net.Reachable(b, r.Gateway) {
				continue
			}
			if _, err := r.Net.PlanRoute(b, r.Gateway); err == nil {
				return b
			}
		}
		t.Skip("no gateway-reachable building")
		return -1
	}
	srcB := pick(ra)
	dstB := pick(rb)

	res, err := in.Send(
		Address{Region: "boston", Building: srcB},
		Address{Region: "providence", Building: dstB},
		[]byte("inter-city hello"), sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RegionPath) != 3 {
		t.Fatalf("region path = %v", res.RegionPath)
	}
	if res.Delivered {
		if len(res.Legs) != 3 {
			t.Fatalf("delivered with %d legs", len(res.Legs))
		}
		// The transit region (worcester) is a passthrough leg.
		if res.Legs[1].Src != res.Legs[1].Dst {
			t.Error("transit leg should be gateway passthrough")
		}
		if res.TotalBroadcasts == 0 {
			t.Error("delivered with no broadcasts")
		}
		if res.EndToEndLatency() < res.LinkLatency {
			t.Error("latency must include link latency")
		}
	} else {
		// A mesh leg failed: Send stops at the failing leg.
		if len(res.Legs) == 0 || res.Legs[len(res.Legs)-1].Delivered {
			t.Errorf("failed send must end at an undelivered leg: %+v", res.Legs)
		}
		t.Logf("end-to-end delivery failed at leg %d of %d (acceptable: per-leg deliverability < 1)",
			len(res.Legs), len(res.RegionPath))
	}
}

func TestSendSameRegion(t *testing.T) {
	in, ra, _, _ := buildInternetwork(t)
	var src, dst int
	found := false
	pairs, err := ra.Net.RandomPairs(9, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if ra.Net.Reachable(p[0], p[1]) {
			if _, err := ra.Net.PlanRoute(p[0], p[1]); err == nil {
				src, dst = p[0], p[1]
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no pair")
	}
	res, err := in.Send(
		Address{Region: "boston", Building: src},
		Address{Region: "boston", Building: dst},
		nil, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RegionPath) != 1 || res.LinkLatency != 0 {
		t.Errorf("same-region path = %v, latency %v", res.RegionPath, res.LinkLatency)
	}
}

func TestSendUnknownRegion(t *testing.T) {
	in, _, _, _ := buildInternetwork(t)
	if _, err := in.Send(Address{Region: "mars"}, Address{Region: "boston"}, nil, sim.DefaultConfig()); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestLinkKindString(t *testing.T) {
	for k, want := range map[LinkKind]string{
		LinkSatellite: "satellite", LinkFiber: "fiber",
		LinkHFRadio: "hf-radio", LinkKind(9): "unknown",
	} {
		if k.String() != want {
			t.Errorf("String(%d) = %q", k, k.String())
		}
	}
}

func TestAccessors(t *testing.T) {
	in, ra, _, _ := buildInternetwork(t)
	if in.Regions() != 3 {
		t.Errorf("Regions = %d", in.Regions())
	}
	if len(in.Links()) != 2 {
		t.Errorf("Links = %d", len(in.Links()))
	}
	if r, ok := in.Region("boston"); !ok || r != ra {
		t.Error("Region lookup failed")
	}
	if _, ok := in.Region("nope"); ok {
		t.Error("unknown region resolved")
	}
}
