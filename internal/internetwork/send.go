package internetwork

import (
	"fmt"
	"math"

	"citymesh/internal/core"
	"citymesh/internal/packet"
	"citymesh/internal/sim"
)

// LegReason classifies the outcome of one attempted intra-region leg, so
// experiments can partition failures by cause instead of seeing a bare
// undelivered flag.
type LegReason int

const (
	// LegOK delivered.
	LegOK LegReason = iota
	// LegPassthrough is a degenerate leg whose source and destination
	// coincide (sender at the gateway, gateway-to-gateway transit within
	// one region): nothing to simulate, trivially delivered.
	LegPassthrough
	// LegPlanFailed could not plan a route inside the region (the mesh is
	// partitioned between the leg's endpoints, or an endpoint is
	// unroutable).
	LegPlanFailed
	// LegMeshUndelivered planned and transmitted but the region's
	// escalation ladder exhausted without delivery.
	LegMeshUndelivered
)

// String implements fmt.Stringer.
func (r LegReason) String() string {
	switch r {
	case LegOK:
		return "ok"
	case LegPassthrough:
		return "passthrough"
	case LegPlanFailed:
		return "plan-failed"
	case LegMeshUndelivered:
		return "mesh-undelivered"
	default:
		return fmt.Sprintf("leg-reason(%d)", int(r))
	}
}

// FailCause classifies why an inter-region send failed end to end.
type FailCause int

const (
	// FailNone: the send delivered.
	FailNone FailCause = iota
	// FailMeshUndelivered: a same-region send's single leg failed.
	FailMeshUndelivered
	// FailNoLinkPath: the summary graph has no surviving link path to the
	// destination region (initially, or after banning failed regions).
	FailNoLinkPath
	// FailNoGatewayPath: an endpoint region exhausted every gateway
	// combination — the source could not reach any exit gateway, or no
	// entry gateway could reach the destination building.
	FailNoGatewayPath
	// FailRerouteExhausted: transit-region failures exceeded the reroute
	// budget.
	FailRerouteExhausted
)

// String implements fmt.Stringer.
func (c FailCause) String() string {
	switch c {
	case FailNone:
		return "none"
	case FailMeshUndelivered:
		return "mesh-undelivered"
	case FailNoLinkPath:
		return "no-link-path"
	case FailNoGatewayPath:
		return "no-gateway-path"
	case FailRerouteExhausted:
		return "reroute-exhausted"
	default:
		return fmt.Sprintf("fail-cause(%d)", int(c))
	}
}

// Leg is one attempted intra-region traversal. Failed gateway combinations
// are recorded too — a delivered send through a region with a dead primary
// gateway shows the dead attempt followed by the failover attempt.
type Leg struct {
	Region   RegionID
	Src, Dst int
	// Gateway is the gateway building this leg exercised: the exit
	// gateway for source/transit regions, the entry gateway for the
	// destination region, -1 for a same-region send with no gateway
	// involved. Surfacing it is what makes failover observable.
	Gateway int
	// Delivered reports this leg's success.
	Delivered bool
	// Reason classifies the outcome.
	Reason LegReason
	// Err carries the route-planning error string for LegPlanFailed.
	Err string
	// Rung is the ladder rung that delivered (or RungExhausted).
	Rung core.Rung
	// Attempts is the leg's ladder length.
	Attempts int
	// Broadcasts is the leg's total mesh transmissions.
	Broadcasts int
	// DeliveryTime is the leg's in-region delivery latency including
	// ladder backoff (0 when undelivered or passthrough).
	DeliveryTime float64
	// Waypoints counts the leg route's conduit waypoints (0 for
	// passthrough legs) — the unit a flat federation-wide source route
	// would have to carry with global addressing.
	Waypoints int
	// HeaderBits and RouteBits are the leg's level-0 header cost (the
	// first attempt's packet), for the hierarchical-vs-flat header
	// accounting. Zero for passthrough and plan-failed legs.
	HeaderBits, RouteBits int
}

// SendResult is the outcome of an inter-region send.
type SendResult struct {
	// RegionPath is the region sequence actually traversed (after any
	// reroutes), up to where the send succeeded or failed.
	RegionPath []RegionID
	// PlannedPath is the initial level-1 path before failures forced
	// reroutes.
	PlannedPath []RegionID
	// Legs lists every attempted leg, including failed gateway combos.
	Legs []Leg
	// Delivered reports end-to-end success.
	Delivered bool
	// Failure classifies an undelivered send (FailNone when Delivered).
	Failure FailCause
	// LinkLatency sums the cost (latency + transfer time) of the link
	// hops actually crossed.
	LinkLatency float64
	// LinkHops counts the inter-region links crossed.
	LinkHops int
	// TotalBroadcasts sums mesh transmissions across all legs.
	TotalBroadcasts int
	// Reroutes counts level-1 re-plans forced by untraversable regions.
	Reroutes int
	// GatewayFailovers counts delivered legs that used a non-primary
	// gateway — the multi-gateway mechanism doing its job.
	GatewayFailovers int
	// PrefixBits is the size of the packet.RegionPrefix this send carries
	// on each long-haul link: the constant-size hierarchical address that
	// replaces a region source route.
	PrefixBits int
}

// EndToEndLatency estimates total delivery latency — link hops plus
// delivered mesh legs. The ok result is false (and the estimate NaN) when
// the send did not deliver: a partial sum over the legs that happened to
// work is not a latency.
func (r SendResult) EndToEndLatency() (float64, bool) {
	if !r.Delivered {
		return math.NaN(), false
	}
	t := r.LinkLatency
	for _, leg := range r.Legs {
		if leg.Reason == LegOK {
			t += leg.DeliveryTime
		}
	}
	return t, true
}

// SendOptions tunes SendOpts.
type SendOptions struct {
	// Seed drives the level-1 tiebreak and the per-leg ladder seeds; a
	// fixed seed makes the whole send reproducible.
	Seed int64
	// Reliable overrides the per-leg escalation ladder (nil selects
	// DefaultLegReliable).
	Reliable *core.ReliableConfig
	// MaxReroutes bounds level-1 re-plans after transit failures
	// (0 selects DefaultMaxReroutes, negative disables rerouting).
	MaxReroutes int
	// L1WidthKm overrides the conduit-of-conduits width
	// (0 selects DefaultL1WidthKm).
	L1WidthKm float64
}

// DefaultMaxReroutes bounds level-1 re-plans per send.
const DefaultMaxReroutes = 3

// DefaultLegReliable is the per-leg ladder: one retry, then a widened
// conduit, and stop — RungWiden-bounded because the federation's next
// recovery step is a *different gateway*, which is cheaper and more
// targeted than flooding a city whose mesh just demonstrated a problem.
func DefaultLegReliable() core.ReliableConfig {
	return core.ReliableConfig{Retries: 1, MaxRung: core.RungWiden, Seed: 1}
}

// Send delivers a payload from src to dst across the inter-network with
// default options: conduit legs within regions, link hops between
// gateways, failover across gateways, and deterministic re-routing around
// failed links and regions.
//
// The escalation order per region hop is the federation-level ladder:
// retry/widen inside the leg (core.SendReliable, RungWiden-bounded) →
// alternate gateway (the next entries×exits combination) → alternate link
// path (ban the region, re-plan at level 1). A returned error means API
// misuse (unknown region, building out of range); every routing or
// delivery failure is reported in the result's Failure and per-leg
// Reasons, never swallowed.
func (in *Internetwork) Send(src, dst Address, payload []byte, simCfg sim.Config) (SendResult, error) {
	return in.SendOpts(src, dst, payload, simCfg, SendOptions{})
}

// SendOpts is Send with explicit options.
func (in *Internetwork) SendOpts(src, dst Address, payload []byte, simCfg sim.Config, opts SendOptions) (SendResult, error) {
	sIdx, ok := in.index[src.Region]
	if !ok {
		return SendResult{}, fmt.Errorf("internetwork: unknown region %q", src.Region)
	}
	dIdx, ok := in.index[dst.Region]
	if !ok {
		return SendResult{}, fmt.Errorf("internetwork: unknown region %q", dst.Region)
	}
	srcNet := in.regions[src.Region].Net
	dstNet := in.regions[dst.Region].Net
	if src.Building < 0 || src.Building >= srcNet.City.NumBuildings() {
		return SendResult{}, fmt.Errorf("internetwork: source building %d out of range", src.Building)
	}
	if dst.Building < 0 || dst.Building >= dstNet.City.NumBuildings() {
		return SendResult{}, fmt.Errorf("internetwork: destination building %d out of range", dst.Building)
	}
	rcfg := DefaultLegReliable()
	if opts.Reliable != nil {
		rcfg = *opts.Reliable
	}
	if err := rcfg.Validate(); err != nil {
		return SendResult{}, err
	}
	maxReroutes := opts.MaxReroutes
	if maxReroutes == 0 {
		maxReroutes = DefaultMaxReroutes
	}

	out := SendResult{
		PrefixBits: (&packet.RegionPrefix{
			SrcRegion: uint32(sIdx), DstRegion: uint32(dIdx),
			DstBuilding: uint32(dst.Building), TTL: 16,
		}).Bits(),
	}

	// sendLeg runs one intra-region ladder with deterministic per-leg
	// seeds derived from the leg's position in the attempt sequence.
	sendLeg := func(r *Region, gw, legSrc, legDst int) (Leg, error) {
		legIdx := len(out.Legs)
		legSim := simCfg
		legSim.Seed = simCfg.Seed + int64(legIdx+1)*0x9e3779b9
		legR := rcfg
		legR.Seed = int64(tieHash(rcfg.Seed+opts.Seed, legIdx))
		res, err := r.Net.SendReliable(legSrc, legDst, payload, legSim, legR)
		if err != nil {
			return Leg{}, err
		}
		leg := Leg{
			Region: r.ID, Src: legSrc, Dst: legDst, Gateway: gw,
			Delivered: res.Delivered, Rung: res.Rung,
			Attempts: len(res.Attempts), Broadcasts: res.TotalBroadcasts,
		}
		if res.Delivered {
			leg.Reason = LegOK
			last := res.Attempts[len(res.Attempts)-1]
			leg.DeliveryTime = res.TotalBackoff + last.DeliveryTime
		} else if len(res.Attempts) > 0 && res.Attempts[0].Err != "" {
			leg.Reason = LegPlanFailed
			leg.Err = res.Attempts[0].Err
		} else {
			leg.Reason = LegMeshUndelivered
		}
		if pkt := res.FirstAttempt.Packet; pkt != nil {
			leg.HeaderBits = pkt.Header.HeaderBits()
			leg.RouteBits = pkt.Header.RouteBits()
			leg.Waypoints = len(pkt.Header.Waypoints)
		}
		out.TotalBroadcasts += res.TotalBroadcasts
		return leg, nil
	}

	// Same-region send: one level-0 leg, no hierarchy involved.
	if sIdx == dIdx {
		out.RegionPath = []RegionID{src.Region}
		out.PlannedPath = out.RegionPath
		out.PrefixBits = 0 // never leaves the region, carries no prefix
		if src.Building == dst.Building {
			out.Legs = append(out.Legs, Leg{
				Region: src.Region, Src: src.Building, Dst: dst.Building,
				Gateway: -1, Delivered: true, Reason: LegPassthrough,
			})
			out.Delivered = true
			return out, nil
		}
		leg, err := sendLeg(in.regions[src.Region], -1, src.Building, dst.Building)
		if err != nil {
			return out, err
		}
		out.Legs = append(out.Legs, leg)
		out.Delivered = leg.Delivered
		if !out.Delivered {
			out.Failure = FailMeshUndelivered
		}
		return out, nil
	}

	// traverse crosses one region: from any candidate entry building to
	// any candidate exit, trying combinations entry-major in failover
	// priority order. Every attempt is recorded as a Leg.
	traverse := func(rIdx int, entries, exits []int, final bool) (exitB int, delivered bool, err error) {
		r := in.regions[in.order[rIdx]]
		for _, e := range entries {
			// A zero-cost passthrough (entry already is a valid exit —
			// sender at the gateway, transit staying on one gateway,
			// gateway hosting the destination) beats any simulated leg.
			for _, x := range exits {
				if e == x {
					out.Legs = append(out.Legs, Leg{
						Region: r.ID, Src: e, Dst: x, Gateway: e,
						Delivered: true, Reason: LegPassthrough,
					})
					return x, true, nil
				}
			}
			for _, x := range exits {
				gw := x
				if final {
					gw = e
				}
				leg, err := sendLeg(r, gw, e, x)
				if err != nil {
					return 0, false, err
				}
				out.Legs = append(out.Legs, leg)
				if leg.Delivered {
					return x, true, nil
				}
			}
		}
		return 0, false, nil
	}
	// countFailover tallies a delivered traversal whose gateway endpoint
	// was not the region's primary.
	countFailover := func(rIdx, gw int) {
		r := in.regions[in.order[rIdx]]
		if gw != r.Gateway {
			for _, g := range r.Gateways {
				if g == gw {
					out.GatewayFailovers++
					return
				}
			}
		}
	}

	path, links, ok := in.l1Path(sIdx, dIdx, opts.Seed, 0, opts.L1WidthKm, len(payload), nil)
	if !ok {
		out.Failure = FailNoLinkPath
		out.RegionPath = []RegionID{src.Region}
		out.PlannedPath = out.RegionPath
		return out, nil
	}
	for _, ri := range path {
		out.PlannedPath = append(out.PlannedPath, in.order[ri])
	}

	banned := map[int]bool{}
	entries := []int{src.Building}
	prevIdx, prevExit := -1, -1
	pos := 0
	appendTraversed := func(rIdx int) {
		id := in.order[rIdx]
		if n := len(out.RegionPath); n == 0 || out.RegionPath[n-1] != id {
			out.RegionPath = append(out.RegionPath, id)
		}
	}
	for {
		rIdx := path[pos]
		final := rIdx == dIdx
		var exits []int
		if final {
			exits = []int{dst.Building}
		} else {
			exits = in.liveGateways(rIdx)
		}
		exitB, delivered, err := traverse(rIdx, entries, exits, final)
		if err != nil {
			return out, err
		}
		if delivered {
			appendTraversed(rIdx)
			if final {
				last := out.Legs[len(out.Legs)-1]
				countFailover(rIdx, last.Gateway)
				out.Delivered = true
				return out, nil
			}
			countFailover(rIdx, exitB)
			l := in.links[links[pos]]
			out.LinkLatency += linkCost(l, len(payload))
			out.LinkHops++
			prevIdx, prevExit = rIdx, exitB
			pos++
			entries = in.liveGateways(path[pos])
			continue
		}
		// The region could not be traversed from any entry×exit combo.
		if prevIdx < 0 || final {
			// An endpoint region exhausted its gateways: nothing to
			// reroute around.
			out.Failure = FailNoGatewayPath
			return out, nil
		}
		// Transit failure: ban the region and re-plan from where we
		// physically are (the previous region's exit gateway). The reroute
		// count doubles as the constraint-schedule step: conduit, widened
		// conduit, then unrestricted.
		banned[rIdx] = true
		out.Reroutes++
		if out.Reroutes > maxReroutes {
			out.Failure = FailRerouteExhausted
			return out, nil
		}
		path, links, ok = in.l1Path(prevIdx, dIdx, opts.Seed, out.Reroutes, opts.L1WidthKm, len(payload), banned)
		if !ok {
			out.Failure = FailNoLinkPath
			return out, nil
		}
		pos = 0
		entries = []int{prevExit}
	}
}
