// Package internetwork composes city-scale DFNs into a wider fallback
// network — §1's question "how do we form an inter-network of DFNs across
// regions?" and "what role ... should technologies such as satellite
// networks serve ... to connect between population centers".
//
// The package is a real two-level hierarchy:
//
//   - Level 0 is routing inside a region: ordinary CityMesh conduits over
//     the building map, delivered by each member Network's escalation
//     ladder (core.SendReliable over the shared, cached Network.Engine()).
//   - Level 1 is the region-summary graph: each region collapses to one
//     coarse node (its anchor position, in kilometers), inter-region links
//     carry latency, bandwidth and Down state, and region-level paths are
//     a seeded Dijkstra over that summary — optionally constrained by a
//     "conduit-of-conduits" computed by the *same* fwd.Decide kernel that
//     makes level-0 forwarding decisions, one hierarchy level up (see
//     hier.go).
//
// The hierarchy is what keeps state and headers flat as the federation
// grows: an ordinary AP stores only its region index and its region's
// gateway list (constant bytes), only gateway buildings hold the
// O(regions+links) summary, and an inter-region frame carries a
// constant-size packet.RegionPrefix on the long-haul links instead of a
// region source route. The `federation` experiment measures both claims.
//
// Regions peer through gateways: designated buildings hosting long-haul
// equipment (satellite terminals, surviving point-to-point fiber, HF
// radio). A region may have several; delivery fails over across them (see
// send.go's escalation order).
package internetwork

import (
	"fmt"

	"citymesh/internal/core"
	"citymesh/internal/fwd"
	"citymesh/internal/geo"
)

// RegionID names a region.
type RegionID string

// Region is one city-scale DFN plus its long-haul attachment points.
type Region struct {
	ID RegionID
	// Net is the region's CityMesh deployment.
	Net *core.Network
	// Gateway is the primary gateway building (kept for compatibility —
	// the flat predecessor of this package had exactly one). When Gateways
	// is set it takes precedence and Gateway is rewritten to Gateways[0]
	// at registration; when only Gateway is set, Gateways becomes
	// [Gateway].
	Gateway int
	// Gateways lists every gateway building in failover priority order.
	// All of a region's gateways share the region's long-haul links — a
	// leg may exit through any live one.
	Gateways []int
	// Pos is the region's anchor on the federation plane, in kilometers.
	// It feeds the level-1 conduit geometry (hier.go); regions that never
	// set it (all anchors coincident) simply get unconstrained level-1
	// rerouting.
	Pos geo.Point
}

// LinkKind classifies an inter-region link.
type LinkKind int

const (
	// LinkSatellite is a satellite bounce: high latency, works anywhere.
	LinkSatellite LinkKind = iota
	// LinkFiber is surviving long-haul fiber: low latency.
	LinkFiber
	// LinkHFRadio is long-range terrestrial radio: moderate latency, low
	// bandwidth.
	LinkHFRadio
)

// String implements fmt.Stringer.
func (k LinkKind) String() string {
	switch k {
	case LinkSatellite:
		return "satellite"
	case LinkFiber:
		return "fiber"
	case LinkHFRadio:
		return "hf-radio"
	default:
		return "unknown"
	}
}

// Link is a bidirectional region-to-region connection.
type Link struct {
	A, B RegionID
	Kind LinkKind
	// LatencySeconds is the one-way link latency.
	LatencySeconds float64
	// BandwidthMbps is the usable link rate; it adds payload transfer time
	// to the link cost. Zero selects a per-kind default.
	BandwidthMbps float64
	// Down marks a failed link (failure injection).
	Down bool
}

// Address identifies an endpoint across the inter-network: the
// hierarchical Region/Building pair that packet.RegionPrefix carries on
// the long-haul links.
type Address struct {
	Region   RegionID
	Building int
}

// Internetwork is the composed fallback network.
type Internetwork struct {
	regions map[RegionID]*Region
	// order assigns each region its dense level-1 index (registration
	// order) — the index space of the summary graph, the level-1 MapView
	// and packet.RegionPrefix.
	order []RegionID
	index map[RegionID]int
	links []Link
	// deadGW holds explicitly failed gateways (FailGateway).
	deadGW map[RegionID]map[int]bool
	// lk stacks the per-level fwd kernels: level 1 makes the
	// conduit-of-conduits decisions and tallies level-aware counters.
	lk *fwd.LevelKernel
	// adj is the lazily built summary adjacency (summary.go); dirty marks
	// it stale after AddRegion/AddLink. Link Down state is read through at
	// search time, so FailLink needs no invalidation.
	adj      [][]halfLink
	adjDirty bool
}

// New returns an empty inter-network.
func New() *Internetwork {
	return &Internetwork{
		regions: make(map[RegionID]*Region),
		index:   make(map[RegionID]int),
		deadGW:  make(map[RegionID]map[int]bool),
		lk:      fwd.NewLevelKernel(),
	}
}

// AddRegion registers a region. Every gateway building must exist in the
// region's city.
func (in *Internetwork) AddRegion(r *Region) error {
	if r == nil || r.Net == nil {
		return fmt.Errorf("internetwork: nil region")
	}
	if _, dup := in.regions[r.ID]; dup {
		return fmt.Errorf("internetwork: duplicate region %q", r.ID)
	}
	if len(r.Gateways) == 0 {
		r.Gateways = []int{r.Gateway}
	} else {
		r.Gateway = r.Gateways[0]
	}
	seen := make(map[int]bool, len(r.Gateways))
	for _, g := range r.Gateways {
		if g < 0 || g >= r.Net.City.NumBuildings() {
			return fmt.Errorf("internetwork: region %q gateway building %d out of range", r.ID, g)
		}
		if seen[g] {
			return fmt.Errorf("internetwork: region %q duplicate gateway %d", r.ID, g)
		}
		seen[g] = true
	}
	in.regions[r.ID] = r
	in.index[r.ID] = len(in.order)
	in.order = append(in.order, r.ID)
	in.adjDirty = true
	return nil
}

// AddLink connects two registered regions.
func (in *Internetwork) AddLink(l Link) error {
	if _, ok := in.regions[l.A]; !ok {
		return fmt.Errorf("internetwork: unknown region %q", l.A)
	}
	if _, ok := in.regions[l.B]; !ok {
		return fmt.Errorf("internetwork: unknown region %q", l.B)
	}
	if l.A == l.B {
		return fmt.Errorf("internetwork: self link %q", l.A)
	}
	if l.LatencySeconds <= 0 {
		l.LatencySeconds = defaultLatency(l.Kind)
	}
	if l.BandwidthMbps <= 0 {
		l.BandwidthMbps = defaultBandwidth(l.Kind)
	}
	in.links = append(in.links, l)
	in.adjDirty = true
	return nil
}

func defaultLatency(k LinkKind) float64 {
	switch k {
	case LinkFiber:
		return 0.01
	case LinkHFRadio:
		return 0.1
	default:
		return 0.6 // GEO satellite bounce
	}
}

func defaultBandwidth(k LinkKind) float64 {
	switch k {
	case LinkFiber:
		return 1000
	case LinkHFRadio:
		return 0.1
	default:
		return 20
	}
}

// Region returns a registered region.
func (in *Internetwork) Region(id RegionID) (*Region, bool) {
	r, ok := in.regions[id]
	return r, ok
}

// Index returns a region's dense level-1 index (its node id in the
// summary graph and in packet.RegionPrefix).
func (in *Internetwork) Index(id RegionID) (int, bool) {
	i, ok := in.index[id]
	return i, ok
}

// RegionIDs lists the registered regions in dense-index order.
func (in *Internetwork) RegionIDs() []RegionID {
	return append([]RegionID(nil), in.order...)
}

// FailLink marks links between two regions as down (failure injection) and
// returns how many links changed state. Flapping a link down→up→down is
// fully supported: path computation reads Down at search time.
func (in *Internetwork) FailLink(a, b RegionID, down bool) int {
	n := 0
	for i := range in.links {
		l := &in.links[i]
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			if l.Down != down {
				l.Down = down
				n++
			}
		}
	}
	return n
}

// FailGateway marks one of a region's gateway buildings as failed (or
// restores it) and returns how many gateways changed state (0 or 1).
// Failed gateways are skipped by gateway selection; a region whose every
// gateway is down becomes untraversable and Send reroutes around it.
func (in *Internetwork) FailGateway(id RegionID, building int, down bool) int {
	r, ok := in.regions[id]
	if !ok {
		return 0
	}
	isGW := false
	for _, g := range r.Gateways {
		if g == building {
			isGW = true
			break
		}
	}
	if !isGW {
		return 0
	}
	dead := in.deadGW[id]
	if dead == nil {
		dead = make(map[int]bool)
		in.deadGW[id] = dead
	}
	if dead[building] == down {
		return 0
	}
	if down {
		dead[building] = true
	} else {
		delete(dead, building)
	}
	return 1
}

// liveGateways returns the region's usable gateways in failover priority
// order, skipping those failed via FailGateway.
func (in *Internetwork) liveGateways(idx int) []int {
	r := in.regions[in.order[idx]]
	dead := in.deadGW[r.ID]
	out := make([]int, 0, len(r.Gateways))
	for _, g := range r.Gateways {
		if !dead[g] {
			out = append(out, g)
		}
	}
	return out
}

// LevelCounts snapshots the fwd kernel's per-reason decision totals at one
// hierarchy level (fwd.Level0Building, fwd.Level1Region). Level-1 counts
// tally the conduit-of-conduits decisions made while planning and
// re-routing region paths.
func (in *Internetwork) LevelCounts(level int) fwd.Counts { return in.lk.Counts(level) }

// Regions returns the registered region count.
func (in *Internetwork) Regions() int { return len(in.regions) }

// Links returns a copy of the link table.
func (in *Internetwork) Links() []Link { return append([]Link(nil), in.links...) }
