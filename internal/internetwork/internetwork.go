// Package internetwork composes city-scale DFNs into a wider fallback
// network — §1's question "how do we form an inter-network of DFNs across
// regions?" and "what role ... should technologies such as satellite
// networks serve ... to connect between population centers".
//
// Each Region is one CityMesh deployment. Regions peer through gateways:
// designated buildings hosting long-haul equipment (satellite terminals,
// surviving point-to-point fiber, HF radio). An inter-region message rides
// CityMesh conduits from the source to its region's gateway, crosses one or
// more inter-region links, and rides conduits again from the destination
// region's gateway to the destination building. Region-level routing is a
// Dijkstra over the gateway link graph weighted by link latency.
package internetwork

import (
	"container/heap"
	"fmt"

	"citymesh/internal/core"
	"citymesh/internal/sim"
)

// RegionID names a region.
type RegionID string

// Region is one city-scale DFN plus its gateway building.
type Region struct {
	ID RegionID
	// Net is the region's CityMesh deployment.
	Net *core.Network
	// Gateway is the dense building index hosting the region's long-haul
	// equipment.
	Gateway int
}

// LinkKind classifies an inter-region link.
type LinkKind int

const (
	// LinkSatellite is a satellite bounce: high latency, works anywhere.
	LinkSatellite LinkKind = iota
	// LinkFiber is surviving long-haul fiber: low latency.
	LinkFiber
	// LinkHFRadio is long-range terrestrial radio: moderate latency, low
	// bandwidth.
	LinkHFRadio
)

// String implements fmt.Stringer.
func (k LinkKind) String() string {
	switch k {
	case LinkSatellite:
		return "satellite"
	case LinkFiber:
		return "fiber"
	case LinkHFRadio:
		return "hf-radio"
	default:
		return "unknown"
	}
}

// Link is a bidirectional gateway-to-gateway connection.
type Link struct {
	A, B RegionID
	Kind LinkKind
	// LatencySeconds is the one-way link latency.
	LatencySeconds float64
	// Down marks a failed link (failure injection).
	Down bool
}

// Address identifies an endpoint across the inter-network.
type Address struct {
	Region   RegionID
	Building int
}

// Internetwork is the composed fallback network.
type Internetwork struct {
	regions map[RegionID]*Region
	links   []Link
}

// New returns an empty inter-network.
func New() *Internetwork {
	return &Internetwork{regions: make(map[RegionID]*Region)}
}

// AddRegion registers a region. The gateway building must exist in the
// region's city.
func (in *Internetwork) AddRegion(r *Region) error {
	if r == nil || r.Net == nil {
		return fmt.Errorf("internetwork: nil region")
	}
	if r.Gateway < 0 || r.Gateway >= r.Net.City.NumBuildings() {
		return fmt.Errorf("internetwork: gateway building %d out of range", r.Gateway)
	}
	if _, dup := in.regions[r.ID]; dup {
		return fmt.Errorf("internetwork: duplicate region %q", r.ID)
	}
	in.regions[r.ID] = r
	return nil
}

// AddLink connects two registered regions.
func (in *Internetwork) AddLink(l Link) error {
	if _, ok := in.regions[l.A]; !ok {
		return fmt.Errorf("internetwork: unknown region %q", l.A)
	}
	if _, ok := in.regions[l.B]; !ok {
		return fmt.Errorf("internetwork: unknown region %q", l.B)
	}
	if l.A == l.B {
		return fmt.Errorf("internetwork: self link %q", l.A)
	}
	if l.LatencySeconds <= 0 {
		l.LatencySeconds = defaultLatency(l.Kind)
	}
	in.links = append(in.links, l)
	return nil
}

func defaultLatency(k LinkKind) float64 {
	switch k {
	case LinkFiber:
		return 0.01
	case LinkHFRadio:
		return 0.1
	default:
		return 0.6 // GEO satellite bounce
	}
}

// Region returns a registered region.
func (in *Internetwork) Region(id RegionID) (*Region, bool) {
	r, ok := in.regions[id]
	return r, ok
}

// RegionPath returns the minimum-latency sequence of regions from a to b
// over non-failed links, inclusive of both endpoints.
func (in *Internetwork) RegionPath(a, b RegionID) ([]RegionID, float64, error) {
	if _, ok := in.regions[a]; !ok {
		return nil, 0, fmt.Errorf("internetwork: unknown region %q", a)
	}
	if _, ok := in.regions[b]; !ok {
		return nil, 0, fmt.Errorf("internetwork: unknown region %q", b)
	}
	if a == b {
		return []RegionID{a}, 0, nil
	}
	dist := map[RegionID]float64{a: 0}
	prev := map[RegionID]RegionID{}
	pq := &regionHeap{{id: a, d: 0}}
	done := map[RegionID]bool{}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(regionItem)
		if done[it.id] {
			continue
		}
		done[it.id] = true
		if it.id == b {
			break
		}
		for _, l := range in.links {
			if l.Down {
				continue
			}
			var peer RegionID
			switch it.id {
			case l.A:
				peer = l.B
			case l.B:
				peer = l.A
			default:
				continue
			}
			nd := it.d + l.LatencySeconds
			if cur, ok := dist[peer]; !ok || nd < cur {
				dist[peer] = nd
				prev[peer] = it.id
				heap.Push(pq, regionItem{id: peer, d: nd})
			}
		}
	}
	total, ok := dist[b]
	if !ok || !done[b] {
		return nil, 0, fmt.Errorf("internetwork: no link path %q -> %q", a, b)
	}
	var path []RegionID
	for cur := b; ; cur = prev[cur] {
		path = append([]RegionID{cur}, path...)
		if cur == a {
			break
		}
	}
	return path, total, nil
}

type regionItem struct {
	id RegionID
	d  float64
}

type regionHeap []regionItem

func (h regionHeap) Len() int           { return len(h) }
func (h regionHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h regionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *regionHeap) Push(x any)        { *h = append(*h, x.(regionItem)) }
func (h *regionHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Leg is one intra-region conduit traversal of an inter-region delivery.
type Leg struct {
	Region    RegionID
	Src, Dst  int
	Delivered bool
	Sim       sim.Result
}

// SendResult is the outcome of an inter-region send.
type SendResult struct {
	RegionPath []RegionID
	Legs       []Leg
	// Delivered reports end-to-end success (every leg delivered).
	Delivered bool
	// LinkLatency is the summed inter-region link latency.
	LinkLatency float64
	// TotalBroadcasts sums mesh transmissions across all legs.
	TotalBroadcasts int
}

// Send delivers a payload from src to dst across the inter-network: conduit
// legs within regions, link hops between gateways.
func (in *Internetwork) Send(src, dst Address, payload []byte, simCfg sim.Config) (SendResult, error) {
	regions, latency, err := in.RegionPath(src.Region, dst.Region)
	if err != nil {
		return SendResult{}, err
	}
	out := SendResult{RegionPath: regions, LinkLatency: latency, Delivered: true}

	for i, rid := range regions {
		r := in.regions[rid]
		legSrc, legDst := r.Gateway, r.Gateway
		if i == 0 {
			legSrc = src.Building
		}
		if i == len(regions)-1 {
			legDst = dst.Building
		}
		if legSrc == legDst {
			// Gateway-to-gateway passthrough within one region, or sender
			// already at the gateway: nothing to simulate.
			out.Legs = append(out.Legs, Leg{Region: rid, Src: legSrc, Dst: legDst, Delivered: true})
			continue
		}
		res, err := r.Net.Send(legSrc, legDst, payload, simCfg)
		if err != nil {
			out.Delivered = false
			out.Legs = append(out.Legs, Leg{Region: rid, Src: legSrc, Dst: legDst})
			return out, nil // routing failure inside a region is a delivery failure, not an API error
		}
		leg := Leg{Region: rid, Src: legSrc, Dst: legDst, Delivered: res.Sim.Delivered, Sim: res.Sim}
		out.Legs = append(out.Legs, leg)
		out.TotalBroadcasts += res.Sim.Broadcasts
		if !res.Sim.Delivered {
			out.Delivered = false
			return out, nil
		}
	}
	return out, nil
}

// EndToEndLatency estimates total delivery latency: mesh legs plus links.
func (r SendResult) EndToEndLatency() float64 {
	t := r.LinkLatency
	for _, leg := range r.Legs {
		if leg.Delivered {
			t += leg.Sim.DeliveryTime
		}
	}
	return t
}

// FailLink marks links between two regions as down (failure injection) and
// returns how many links changed state.
func (in *Internetwork) FailLink(a, b RegionID, down bool) int {
	n := 0
	for i := range in.links {
		l := &in.links[i]
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			if l.Down != down {
				l.Down = down
				n++
			}
		}
	}
	return n
}

// Regions returns the registered region count.
func (in *Internetwork) Regions() int { return len(in.regions) }

// Links returns a copy of the link table.
func (in *Internetwork) Links() []Link { return append([]Link(nil), in.links...) }
