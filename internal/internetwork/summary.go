package internetwork

import (
	"container/heap"
	"fmt"
)

// The region-summary graph: level 1 of the hierarchy. Each region is one
// node (its dense index), each Link one undirected edge. The summary is
// all a gateway needs to route between regions — O(regions + links) bytes,
// regardless of how many buildings or APs each member city contains — and
// ordinary APs do not hold it at all (see the *StateBytes accounting at
// the bottom of this file).

// halfLink is one direction of a Link in the adjacency: the peer's region
// index plus the index into the link table. Down state and cost are read
// through the link table at search time, so failure injection (FailLink)
// never invalidates the adjacency.
type halfLink struct {
	peer, link int
}

// summary returns the level-1 adjacency, rebuilding it after topology
// changes (AddRegion/AddLink).
func (in *Internetwork) summary() [][]halfLink {
	if !in.adjDirty && in.adj != nil {
		return in.adj
	}
	adj := make([][]halfLink, len(in.order))
	for li, l := range in.links {
		a, b := in.index[l.A], in.index[l.B]
		adj[a] = append(adj[a], halfLink{peer: b, link: li})
		adj[b] = append(adj[b], halfLink{peer: a, link: li})
	}
	in.adj = adj
	in.adjDirty = false
	return adj
}

// linkCost is the level-1 edge weight: propagation latency plus payload
// transfer time at the link's bandwidth.
func linkCost(l Link, payloadBytes int) float64 {
	c := l.LatencySeconds
	if l.BandwidthMbps > 0 && payloadBytes > 0 {
		c += float64(8*payloadBytes) / (l.BandwidthMbps * 1e6)
	}
	return c
}

// RegionPath returns the minimum-cost sequence of regions from a to b over
// non-failed links, inclusive of both endpoints, plus the total link cost.
// Equal-cost ties break deterministically under seed 0; use
// RegionPathSeeded to vary the tiebreak.
func (in *Internetwork) RegionPath(a, b RegionID) ([]RegionID, float64, error) {
	return in.RegionPathSeeded(a, b, 0)
}

// RegionPathSeeded is RegionPath with an explicit tiebreak seed: when two
// region paths cost exactly the same, the seed picks which one wins, and
// the same seed always picks the same path. Distinct seeds may legally
// pick distinct equal-cost paths.
func (in *Internetwork) RegionPathSeeded(a, b RegionID, seed int64) ([]RegionID, float64, error) {
	ai, ok := in.index[a]
	if !ok {
		return nil, 0, fmt.Errorf("internetwork: unknown region %q", a)
	}
	bi, ok := in.index[b]
	if !ok {
		return nil, 0, fmt.Errorf("internetwork: unknown region %q", b)
	}
	regions, _, cost, ok := in.pathFrom(ai, bi, seed, 0, nil, nil)
	if !ok {
		return nil, 0, fmt.Errorf("internetwork: no link path %q -> %q", a, b)
	}
	ids := make([]RegionID, len(regions))
	for i, r := range regions {
		ids[i] = in.order[r]
	}
	return ids, cost, nil
}

// pathFrom runs the seeded level-1 Dijkstra from region index src to dst.
// banned regions are never entered (src excepted); a non-nil allowed set
// restricts candidates to it (the conduit-of-conduits constraint — src and
// dst are always implicitly allowed). Returns the region index path, the
// parallel link indices (links[i] connects regions[i] to regions[i+1]),
// and the total cost.
func (in *Internetwork) pathFrom(src, dst int, seed int64, payloadBytes int, banned, allowed map[int]bool) (regions, links []int, cost float64, ok bool) {
	n := len(in.order)
	if src < 0 || src >= n || dst < 0 || dst >= n || banned[dst] {
		return nil, nil, 0, false
	}
	if src == dst {
		return []int{src}, nil, 0, true
	}
	adj := in.summary()

	// Per-node tiebreak hashes under the seed: among equal-cost frontier
	// entries and equal-cost predecessors, the smaller hash wins. The hash
	// depends on (seed, node) only, so a fixed seed fixes the selection.
	tie := make([]uint64, n)
	for i := range tie {
		tie[i] = tieHash(seed, i)
	}
	const eps = 0 // exact ties only: costs are sums of identical literals
	dist := make([]float64, n)
	prevR := make([]int, n)
	prevL := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = -1
		prevR[i] = -1
		prevL[i] = -1
	}
	dist[src] = 0
	pq := &summaryHeap{{idx: src, d: 0, tie: tie[src]}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(summaryItem)
		if done[it.idx] {
			continue
		}
		done[it.idx] = true
		if it.idx == dst {
			break
		}
		for _, h := range adj[it.idx] {
			l := &in.links[h.link]
			if l.Down || done[h.peer] {
				continue
			}
			if banned[h.peer] {
				continue
			}
			if allowed != nil && h.peer != dst && h.peer != src && !allowed[h.peer] {
				continue
			}
			nd := it.d + linkCost(*l, payloadBytes)
			switch cur := dist[h.peer]; {
			case cur < 0 || nd < cur-eps:
				dist[h.peer] = nd
				prevR[h.peer] = it.idx
				prevL[h.peer] = h.link
				heap.Push(pq, summaryItem{idx: h.peer, d: nd, tie: tie[h.peer]})
			case nd == cur && prevR[h.peer] >= 0 && tie[it.idx] < tie[prevR[h.peer]]:
				// Equal cost: the seeded hash of the predecessor decides.
				prevR[h.peer] = it.idx
				prevL[h.peer] = h.link
			}
		}
	}
	if !done[dst] {
		return nil, nil, 0, false
	}
	for cur := dst; cur != src; cur = prevR[cur] {
		regions = append(regions, cur)
		links = append(links, prevL[cur])
	}
	regions = append(regions, src)
	reverseInts(regions)
	reverseInts(links)
	return regions, links, dist[dst], true
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// tieHash is the SplitMix64 finalizer over (seed, node).
func tieHash(seed int64, node int) uint64 {
	x := uint64(seed) + (uint64(node)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type summaryItem struct {
	idx int
	d   float64
	tie uint64
}

type summaryHeap []summaryItem

func (h summaryHeap) Len() int { return len(h) }
func (h summaryHeap) Less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	if h[i].tie != h[j].tie {
		return h[i].tie < h[j].tie
	}
	return h[i].idx < h[j].idx
}
func (h summaryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *summaryHeap) Push(x any)   { *h = append(*h, x.(summaryItem)) }
func (h *summaryHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Routing-state accounting — the hierarchy's memory argument, measured by
// the `federation` experiment. Sizes are the serialized bytes of each
// logical table, using fixed-width entries.
const (
	// bytesPerRegionEntry: a summary-graph node — dense index (4), anchor
	// position (2×8), primary gateway (4).
	bytesPerRegionEntry = 24
	// bytesPerLinkEntry: a summary-graph edge — endpoints (2×4), latency
	// (8), bandwidth (8), state byte, padded.
	bytesPerLinkEntry = 32
	// bytesPerGatewayEntry: one gateway building index plus liveness, in
	// the per-AP gateway list.
	bytesPerGatewayEntry = 8
	// bytesPerFlatEntry: one next-hop entry of the flat baseline, per
	// destination building.
	bytesPerFlatEntry = 8
)

// PerAPL1StateBytes is the level-1 routing state an *ordinary* AP in the
// given region must hold: its own region index plus its region's gateway
// list. It does not grow with the federation — that is the point of the
// hierarchy.
func (in *Internetwork) PerAPL1StateBytes(id RegionID) int {
	r, ok := in.regions[id]
	if !ok {
		return 0
	}
	return 4 + bytesPerGatewayEntry*len(r.Gateways)
}

// GatewayStateBytes is the region-summary graph a gateway building holds:
// O(regions + links), independent of member-city sizes. Only gateways pay
// this; there are a handful per region.
func (in *Internetwork) GatewayStateBytes() int {
	return bytesPerRegionEntry*len(in.order) + bytesPerLinkEntry*len(in.links)
}

// FlatPerAPStateBytes is the counterfactual this package replaced: a flat
// federation where every AP keeps next-hop state per destination building
// across all member cities. It grows linearly with total federation size.
func (in *Internetwork) FlatPerAPStateBytes() int {
	total := 0
	for _, id := range in.order {
		total += in.regions[id].Net.City.NumBuildings()
	}
	return bytesPerFlatEntry * total
}
