package internetwork

import (
	"citymesh/internal/fwd"
	"citymesh/internal/geo"
	"citymesh/internal/packet"
)

// The conduit-of-conduits: fwd.Decide applied one hierarchy level up.
//
// Level 0 already answers "should this building relay toward that
// building?" from nothing but a map view and a two-waypoint header. Level
// 1 asks the structurally identical question — "should this *region* relay
// toward that region?" — so instead of new policy code, the federation
// hands the same kernel a coarser MapView in which regions are the
// "buildings": NumBuildings is the region count and Centroid is each
// region's anchor on the federation plane, in kilometers. Km units matter:
// Header.Width is a uint8 capped at packet.MaxWidthMeters, which reads
// naturally as km at this level, and a 75 km conduit over 50 km city
// spacing recruits the corridor of regions between source and destination
// the way a 75 m conduit recruits buildings along a street.
//
// The allowed set it produces constrains level-1 re-routing after a region
// or link failure: the first reroute searches inside the conduit, the next
// inside a widened conduit (mirroring the RungWiden step of the level-0
// ladder), and further reroutes fall back to the unrestricted summary
// graph (the level-1 analogue of RungFlood). Every classification is a
// real fwd.Decide call tallied into the level-1 reason counters
// (LevelCounts).

// DefaultL1WidthKm is the level-1 conduit width: 1.5× the default
// federation city spacing, wide enough to recruit off-corridor neighbor
// regions as reroute candidates.
const DefaultL1WidthKm = 75

// regionView adapts the federation to fwd.MapView with regions as the
// map's "buildings".
type regionView struct{ in *Internetwork }

func (v regionView) NumBuildings() int { return len(v.in.order) }
func (v regionView) Centroid(i int) geo.Point {
	return v.in.regions[v.in.order[i]].Pos
}

// l1Allowed classifies every region through the level-1 kernel against a
// conduit-of-conduits header from region src to region dst, returning the
// set a constrained reroute may traverse. A nil return means "no
// constraint": the federation's geometry is degenerate (anchors were never
// set, or src and dst coincide) or the conduit recruits nothing beyond the
// endpoints.
func (in *Internetwork) l1Allowed(src, dst int, widthKm float64, seed int64, attempt int) map[int]bool {
	view := regionView{in}
	if view.Centroid(src) == view.Centroid(dst) {
		return nil
	}
	w := widthKm
	if w <= 0 {
		w = DefaultL1WidthKm
	}
	if w > packet.MaxWidthMeters {
		w = packet.MaxWidthMeters
	}
	hdr := &packet.Header{
		TTL: 16,
		// The MsgID keys the kernel's conduit cache, so it must be unique
		// per (topology, endpoints, width step, seed) — topology folds in
		// via the region and link counts so a federation grown after a
		// send never hits a stale cached region.
		MsgID:     l1MsgID(seed, src, dst, attempt, len(in.order), len(in.links)),
		Width:     uint8(w),
		Waypoints: []uint32{uint32(src), uint32(dst)},
	}
	k := in.lk.Level(fwd.Level1Region)
	allowed := make(map[int]bool, len(in.order))
	for r := range in.order {
		self := fwd.Self{Pos: view.Centroid(r), Building: r}
		v := k.Decide(view, hdr, self, false)
		if v.Rebroadcast || v.Deliver {
			allowed[r] = true
		}
	}
	allowed[src], allowed[dst] = true, true
	if len(allowed) <= 2 {
		return nil
	}
	return allowed
}

// l1Path plans a region path with the conduit-of-conduits constraint
// schedule: attempt 0 searches inside the conduit, attempt 1 inside a 2×
// widened conduit, attempts ≥ 2 (and any attempt whose constrained search
// finds nothing) fall back to the unrestricted summary graph.
func (in *Internetwork) l1Path(from, to int, seed int64, attempt int, widthKm float64, payloadBytes int, banned map[int]bool) (regions, links []int, ok bool) {
	if widthKm <= 0 {
		widthKm = DefaultL1WidthKm
	}
	if attempt <= 1 {
		w := widthKm * float64(attempt+1)
		if allowed := in.l1Allowed(from, to, w, seed, attempt); allowed != nil {
			if r, l, _, ok := in.pathFrom(from, to, seed, payloadBytes, banned, allowed); ok {
				return r, l, true
			}
		}
	}
	r, l, _, ok := in.pathFrom(from, to, seed, payloadBytes, banned, nil)
	return r, l, ok
}

// l1MsgID derives the deterministic cache key for one conduit-of-conduits
// header (SplitMix64 finalizer over the packed parameters).
func l1MsgID(seed int64, src, dst, attempt, nRegions, nLinks int) uint64 {
	x := uint64(seed)
	for _, v := range [...]int{src, dst, attempt, nRegions, nLinks} {
		x += (uint64(v) + 1) * 0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}
