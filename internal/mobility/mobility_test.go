package mobility

import (
	"math"
	"testing"

	"citymesh/internal/geo"
)

func TestCompileRejectsDegenerate(t *testing.T) {
	if _, err := NewTrack(nil, 1, 0, false); err == nil {
		t.Error("empty waypoints must not compile")
	}
	if _, err := NewTrack([]geo.Point{geo.Pt(0, 0)}, 0, 0, false); err == nil {
		t.Error("zero speed must not compile")
	}
	if _, err := NewTrack([]geo.Point{geo.Pt(0, 0)}, -2, 0, false); err == nil {
		t.Error("negative speed must not compile")
	}
}

func TestOpenTrackClampsAtEnds(t *testing.T) {
	tr, err := Line(geo.Pt(0, 0), geo.Pt(100, 0), 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.PosAt(0); got != geo.Pt(0, 0) {
		t.Errorf("before start: got %v", got)
	}
	if got := tr.PosAt(5); got != geo.Pt(0, 0) {
		t.Errorf("at start: got %v", got)
	}
	mid := tr.PosAt(10) // 5 s under way at 10 m/s
	if math.Abs(mid.X-50) > 1e-9 || mid.Y != 0 {
		t.Errorf("midpoint: got %v, want (50,0)", mid)
	}
	if got := tr.PosAt(1e6); got != geo.Pt(100, 0) {
		t.Errorf("after end must park at final waypoint: got %v", got)
	}
}

func TestLoopWrapsDeterministically(t *testing.T) {
	tr, err := BusLoop(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 50)}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Length(), 300.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("circumference: got %v want %v", got, want)
	}
	if got, want := tr.Period(), 30.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("period: got %v want %v", got, want)
	}
	// One full period later the bus is back at the same spot — for any t.
	for _, tm := range []float64{0, 3.7, 12.25, 29.9} {
		a, b := tr.PosAt(tm), tr.PosAt(tm+tr.Period())
		if a.Dist(b) > 1e-6 {
			t.Errorf("t=%v: loop not periodic: %v vs %v", tm, a, b)
		}
	}
	// The closing segment (back edge from (0,50) to (0,0)) is traversed:
	// at arc 275 m (t=27.5 s) the bus is at (0, 25).
	p := tr.PosAt(27.5)
	if math.Abs(p.X) > 1e-9 || math.Abs(p.Y-25) > 1e-9 {
		t.Errorf("closing segment: got %v, want (0,25)", p)
	}
}

func TestSpeedIsConstantAlongTrack(t *testing.T) {
	tr, err := SurveyWalk(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(200, 200)}, 50, 1.4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Sampled displacement per dt never exceeds speed*dt (corners can make
	// it smaller, never larger).
	const dt = 0.25
	for tm := 0.0; tm < 60; tm += dt {
		d := tr.PosAt(tm).Dist(tr.PosAt(tm + dt))
		if d > 1.4*dt+1e-9 {
			t.Fatalf("t=%v: moved %v m in %v s at 1.4 m/s", tm, d, dt)
		}
	}
}

func TestSinglePointTrackIsStationary(t *testing.T) {
	tr, err := NewTrack([]geo.Point{geo.Pt(7, 9)}, 3, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{0, 1, 100} {
		if got := tr.PosAt(tm); got != geo.Pt(7, 9) {
			t.Errorf("t=%v: got %v", tm, got)
		}
	}
}

func TestZeroLengthLoopDoesNotDivide(t *testing.T) {
	// All waypoints identical: total length 0; PosAt must not NaN.
	tr, err := NewTrack([]geo.Point{geo.Pt(1, 1), geo.Pt(1, 1)}, 2, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	p := tr.PosAt(42)
	if math.IsNaN(p.X) || math.IsNaN(p.Y) {
		t.Fatalf("NaN position %v", p)
	}
	if tr.Period() != 0 {
		t.Errorf("degenerate loop period: got %v, want 0", tr.Period())
	}
}
