// Package mobility models moving participants in a disaster mesh: buses
// and emergency vehicles acting as mobile relays (data mules), and
// pedestrians carrying user endpoints. Everything so far in the evaluation
// was static — static APs, static or pre-scheduled failures — but the
// paper's premise is operating *while* the disaster unfolds, and the
// things that move during a disaster (a bus still running its route, a
// survivor walking out of the flooded zone) are exactly the things that
// can stitch a partitioned mesh back together.
//
// The core type is Track: a waypoint polyline plus a speed, giving a
// deterministic position for every instant. Tracks deliberately reuse the
// survey-walk machinery from internal/measure (the paper's §2 wardriving
// study walked and cycled the same kinds of paths), so a measurement
// survey route can be replayed as a vehicle or pedestrian track unchanged.
//
// A Track is immutable after Compile and safe for concurrent readers,
// which the parallel experiment runner relies on.
package mobility

import (
	"fmt"

	"citymesh/internal/geo"
	"citymesh/internal/measure"
)

// Track is a deterministic motion plan: a polyline followed at constant
// speed, starting at StartS. Before StartS the mover sits at the first
// waypoint. After the polyline is exhausted a looping track wraps around
// (closing the loop from the last waypoint back to the first); a non-loop
// track parks at its final waypoint.
type Track struct {
	// Waypoints is the polyline, in meters (city frame).
	Waypoints []geo.Point
	// SpeedMps is the constant speed along the polyline. Walking ~1.4,
	// cycling ~4, a city bus ~8.
	SpeedMps float64
	// StartS is the departure time in simulation seconds.
	StartS float64
	// Loop closes the polyline into a circuit (bus route); otherwise the
	// mover parks at the last waypoint (evacuation walk).
	Loop bool

	// cum[i] is the arc length from Waypoints[0] to Waypoints[i];
	// cum[len] additionally carries the closing segment for loops.
	cum []float64
	// total is the traversal length of one pass (loop circumference or
	// open polyline length).
	total float64
}

// Compile validates the track and precomputes arc lengths. It must be
// called once before PosAt; NewTrack and the helper constructors do so.
func (tr *Track) Compile() error {
	if len(tr.Waypoints) == 0 {
		return fmt.Errorf("mobility: track needs at least one waypoint")
	}
	if tr.SpeedMps <= 0 {
		return fmt.Errorf("mobility: non-positive speed %v", tr.SpeedMps)
	}
	n := len(tr.Waypoints)
	tr.cum = make([]float64, n+1)
	for i := 1; i < n; i++ {
		tr.cum[i] = tr.cum[i-1] + tr.Waypoints[i-1].Dist(tr.Waypoints[i])
	}
	tr.cum[n] = tr.cum[n-1]
	if tr.Loop && n > 1 {
		tr.cum[n] += tr.Waypoints[n-1].Dist(tr.Waypoints[0])
	}
	tr.total = tr.cum[n]
	return nil
}

// NewTrack builds and compiles a track.
func NewTrack(waypoints []geo.Point, speedMps, startS float64, loop bool) (*Track, error) {
	tr := &Track{Waypoints: waypoints, SpeedMps: speedMps, StartS: startS, Loop: loop}
	if err := tr.Compile(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Length returns one pass's arc length (the loop circumference for loops).
func (tr *Track) Length() float64 { return tr.total }

// Period returns the loop traversal time in seconds, or 0 for open tracks
// and degenerate loops.
func (tr *Track) Period() float64 {
	if !tr.Loop || tr.total <= 0 {
		return 0
	}
	return tr.total / tr.SpeedMps
}

// PosAt returns the mover's position at simulation time t. It implements
// sim.MobilePath.
func (tr *Track) PosAt(t float64) geo.Point {
	n := len(tr.Waypoints)
	if n == 1 || t <= tr.StartS || tr.total <= 0 {
		return tr.Waypoints[0]
	}
	d := (t - tr.StartS) * tr.SpeedMps
	if tr.Loop {
		// Wrap into [0, total): the mover goes around forever.
		k := int(d / tr.total)
		d -= float64(k) * tr.total
	} else if d >= tr.total {
		return tr.Waypoints[n-1]
	}
	// Find the segment holding arc position d (cum is ascending; linear
	// scan is fine for the handful of waypoints real tracks carry, and
	// binary search keeps long survey tracks cheap).
	lo, hi := 0, n
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if tr.cum[mid] <= d {
			lo = mid
		} else {
			hi = mid
		}
	}
	a := tr.Waypoints[lo]
	b := tr.Waypoints[0] // loop-closing segment target
	if lo+1 < n {
		b = tr.Waypoints[lo+1]
	}
	segLen := tr.cum[lo+1] - tr.cum[lo]
	if segLen <= 0 {
		return a
	}
	return a.Lerp(b, (d-tr.cum[lo])/segLen)
}

// Line returns a straight track from a to b — the evacuation-walk shape
// (measure.LineTrack replayed as motion).
func Line(a, b geo.Point, speedMps, startS float64) (*Track, error) {
	return NewTrack(measure.LineTrack(a, b), speedMps, startS, false)
}

// BusLoop returns a rectangular circuit around r — a city bus route that
// keeps running through the disaster.
func BusLoop(r geo.Rect, speedMps, startS float64) (*Track, error) {
	return NewTrack([]geo.Point{
		geo.Pt(r.Min.X, r.Min.Y),
		geo.Pt(r.Max.X, r.Min.Y),
		geo.Pt(r.Max.X, r.Max.Y),
		geo.Pt(r.Min.X, r.Max.Y),
	}, speedMps, startS, true)
}

// SurveyWalk replays a lawnmower survey of r (the §2 measurement study's
// thorough-area shape, via measure.SerpentineTrack) as a pedestrian track.
func SurveyWalk(r geo.Rect, spacing, speedMps, startS float64) (*Track, error) {
	return NewTrack(measure.SerpentineTrack(r, spacing), speedMps, startS, false)
}
