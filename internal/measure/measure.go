// Package measure simulates the paper's §2 measurement study. The authors
// collected Wi-Fi beacon frames by walking and bicycling through four
// Boston-area survey areas (downtown, campus, residential, river bank) with
// a 2.4 GHz scanner sampling at 0.2–0.4 Hz; each measurement records a GPS
// position and the set of BSSIDs heard.
//
// Here the same generative process runs against a synthetic city's realized
// AP mesh: a scanner moves along a survey track, taking samples at the
// configured rate, and detects each AP within range with a probability that
// decays with distance (beacon loss). The package then computes the exact
// statistics the paper reports: Table 1 (measurements and unique APs per
// area), Figure 1a (CDF of MACs per measurement), Figure 1b (CDF of per-AP
// location spread) and Figure 2 (common APs vs. measurement-pair distance).
package measure

import (
	"fmt"
	"math"
	"math/rand"

	"citymesh/internal/geo"
	"citymesh/internal/mesh"
	"citymesh/internal/stats"
)

// Config parameterizes the simulated survey.
type Config struct {
	// DetectRange is the maximum distance at which a beacon can be heard.
	// Wardriving detection reaches farther than usable links; the paper's
	// observed per-AP spreads imply radii of 27–84 m, so the default is
	// 90 m.
	DetectRange float64
	// ReliableFrac is the fraction of DetectRange within which detection
	// is certain; beyond it detection probability falls linearly to zero
	// at DetectRange.
	ReliableFrac float64
	// SampleHz is the scan rate (the paper: 0.2–0.4 Hz).
	SampleHz float64
	// SpeedMps is the surveyor's speed (walking ~1.4, cycling ~4).
	SpeedMps float64
	// Seed drives detection randomness.
	Seed int64
}

// DefaultConfig mirrors the paper's walking survey.
func DefaultConfig() Config {
	return Config{DetectRange: 90, ReliableFrac: 0.45, SampleHz: 0.3, SpeedMps: 1.4, Seed: 1}
}

// Sample is one measurement: a position and the AP ids (standing in for
// BSSIDs) heard there.
type Sample struct {
	Pos    geo.Point
	TimeS  float64
	BSSIDs []int
}

// Dataset is the outcome of surveying one area.
type Dataset struct {
	Area    string
	Samples []Sample
}

// Survey walks the polyline track through the mesh, sampling beacons. The
// sampling interval in meters is SpeedMps / SampleHz.
func Survey(m *mesh.Mesh, area string, track []geo.Point, cfg Config) Dataset {
	if cfg.DetectRange <= 0 {
		cfg.DetectRange = 90
	}
	if cfg.SampleHz <= 0 {
		cfg.SampleHz = 0.3
	}
	if cfg.SpeedMps <= 0 {
		cfg.SpeedMps = 1.4
	}
	if cfg.ReliableFrac <= 0 || cfg.ReliableFrac > 1 {
		cfg.ReliableFrac = 0.45
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := Dataset{Area: area}
	step := cfg.SpeedMps / cfg.SampleHz
	tm := 0.0
	for _, pos := range walk(track, step) {
		s := Sample{Pos: pos, TimeS: tm}
		tm += 1 / cfg.SampleHz
		scan(m, pos, cfg, rng, &s)
		ds.Samples = append(ds.Samples, s)
	}
	return ds
}

// scan detects APs around pos.
func scan(m *mesh.Mesh, pos geo.Point, cfg Config, rng *rand.Rand, s *Sample) {
	reliable := cfg.DetectRange * cfg.ReliableFrac
	// Note: the grid query must not allocate per AP; collect into s.BSSIDs.
	m.Grid().WithinRadius(pos, cfg.DetectRange, func(id int, p geo.Point) bool {
		d := p.Dist(pos)
		prob := 1.0
		if d > reliable {
			prob = 1 - (d-reliable)/(cfg.DetectRange-reliable)
		}
		if prob >= 1 || rng.Float64() < prob {
			s.BSSIDs = append(s.BSSIDs, id)
		}
		return true
	})
}

// walk resamples a polyline at uniform arc-length spacing.
func walk(track []geo.Point, step float64) []geo.Point {
	if len(track) == 0 || step <= 0 {
		return nil
	}
	out := []geo.Point{track[0]}
	carry := 0.0
	for i := 0; i+1 < len(track); i++ {
		a, b := track[i], track[i+1]
		segLen := a.Dist(b)
		if segLen == 0 {
			continue
		}
		pos := carry
		for pos+step <= segLen {
			pos += step
			out = append(out, a.Lerp(b, pos/segLen))
		}
		carry = pos - segLen // negative leftover carried into next segment
	}
	return out
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Area         string
	Measurements int
	UniqueAPs    int
}

// Table1 summarizes a dataset into its Table 1 row.
func Table1(ds Dataset) Table1Row {
	uniq := make(map[int]struct{})
	for _, s := range ds.Samples {
		for _, b := range s.BSSIDs {
			uniq[b] = struct{}{}
		}
	}
	return Table1Row{Area: ds.Area, Measurements: len(ds.Samples), UniqueAPs: len(uniq)}
}

// MACsPerMeasurement returns the number of MAC addresses seen at each
// measurement — the sample behind Figure 1a's CDF.
func MACsPerMeasurement(ds Dataset) []float64 {
	out := make([]float64, len(ds.Samples))
	for i, s := range ds.Samples {
		out[i] = float64(len(s.BSSIDs))
	}
	return out
}

// APSpread returns, for every AP seen at two or more measurements, the
// maximum distance between any two positions where it was seen — Figure
// 1b's sample. The paper interprets spread as an estimate of the diameter
// of the transmission region.
func APSpread(ds Dataset) []float64 {
	positions := make(map[int][]geo.Point)
	for _, s := range ds.Samples {
		for _, b := range s.BSSIDs {
			positions[b] = append(positions[b], s.Pos)
		}
	}
	var out []float64
	for _, pts := range positions {
		if len(pts) < 2 {
			continue
		}
		best := 0.0
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				if d := pts[i].Dist2(pts[j]); d > best {
					best = d
				}
			}
		}
		out = append(out, math.Sqrt(best))
	}
	return out
}

// CommonAPs bins every pair of measurements by their distance and records
// the number of APs heard at both — Figure 2. maxPairs caps the number of
// pairs examined (sampled deterministically) to keep large surveys cheap;
// pass 0 for all pairs.
func CommonAPs(ds Dataset, binWidth float64, maxPairs int, seed int64) *stats.Binned {
	b := stats.NewBinned(binWidth)
	n := len(ds.Samples)
	if n < 2 {
		return b
	}
	sets := make([]map[int]struct{}, n)
	for i, s := range ds.Samples {
		sets[i] = make(map[int]struct{}, len(s.BSSIDs))
		for _, id := range s.BSSIDs {
			sets[i][id] = struct{}{}
		}
	}
	total := n * (n - 1) / 2
	if maxPairs <= 0 || maxPairs >= total {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				addPair(b, ds, sets, i, j)
			}
		}
		return b
	}
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < maxPairs; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		addPair(b, ds, sets, i, j)
	}
	return b
}

func addPair(b *stats.Binned, ds Dataset, sets []map[int]struct{}, i, j int) {
	common := 0
	si, sj := sets[i], sets[j]
	if len(sj) < len(si) {
		si, sj = sj, si
	}
	for id := range si {
		if _, ok := sj[id]; ok {
			common++
		}
	}
	b.Add(ds.Samples[i].Pos.Dist(ds.Samples[j].Pos), float64(common))
}

// SerpentineTrack builds a lawnmower survey path over r with the given pass
// spacing, the shape of a thorough area survey.
func SerpentineTrack(r geo.Rect, spacing float64) []geo.Point {
	if spacing <= 0 {
		spacing = 50
	}
	var track []geo.Point
	y := r.Min.Y
	leftToRight := true
	for y <= r.Max.Y {
		if leftToRight {
			track = append(track, geo.Pt(r.Min.X, y), geo.Pt(r.Max.X, y))
		} else {
			track = append(track, geo.Pt(r.Max.X, y), geo.Pt(r.Min.X, y))
		}
		leftToRight = !leftToRight
		y += spacing
	}
	return track
}

// LineTrack is a straight survey path (the river-bank walk).
func LineTrack(a, b geo.Point) []geo.Point { return []geo.Point{a, b} }

// String renders the Table 1 row like the paper's table.
func (r Table1Row) String() string {
	return fmt.Sprintf("%-12s %8d %10d", r.Area, r.Measurements, r.UniqueAPs)
}
