package measure

import (
	"math"
	"testing"

	"citymesh/internal/citygen"
	"citymesh/internal/geo"
	"citymesh/internal/mesh"
	"citymesh/internal/osm"
	"citymesh/internal/stats"
)

func planCity(seed int64) *osm.City {
	plan, err := citygen.Generate(citygen.SmallTestSpec(seed))
	if err != nil {
		panic(err)
	}
	city := &osm.City{Name: plan.Spec.Name, Bounds: plan.Bounds}
	for i, b := range plan.Buildings {
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding,
			Footprint: b.Footprint, Centroid: b.Footprint.Centroid(),
		})
	}
	return city
}

func TestWalkResampling(t *testing.T) {
	track := []geo.Point{geo.Pt(0, 0), geo.Pt(100, 0)}
	pts := walk(track, 10)
	if len(pts) != 11 {
		t.Fatalf("points = %d, want 11", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if d := pts[i].Dist(pts[i-1]); math.Abs(d-10) > 1e-9 {
			t.Fatalf("step %d = %v", i, d)
		}
	}
	// Multi-segment with carry.
	track = []geo.Point{geo.Pt(0, 0), geo.Pt(15, 0), geo.Pt(15, 15)}
	pts = walk(track, 10)
	if len(pts) != 4 { // 0, 10, (carry 5→) y=5, y=15
		t.Fatalf("multi-segment points = %d: %v", len(pts), pts)
	}
	if walk(nil, 10) != nil || walk(track, 0) != nil {
		t.Error("degenerate walks should be nil")
	}
}

func TestSurveyDetectsNearbyAPs(t *testing.T) {
	city := planCity(61)
	m := mesh.Place(city, mesh.DefaultConfig())
	track := SerpentineTrack(geo.Rect{Min: geo.Pt(100, 100), Max: geo.Pt(600, 400)}, 80)
	ds := Survey(m, "downtown", track, DefaultConfig())
	if len(ds.Samples) < 50 {
		t.Fatalf("samples = %d", len(ds.Samples))
	}
	row := Table1(ds)
	if row.Measurements != len(ds.Samples) {
		t.Error("Table1 measurement count mismatch")
	}
	if row.UniqueAPs <= 0 {
		t.Error("no APs detected in a dense city")
	}
	if row.String() == "" {
		t.Error("row String empty")
	}
	// Every detected AP must be within DetectRange of the sample.
	cfg := DefaultConfig()
	for _, s := range ds.Samples {
		for _, id := range s.BSSIDs {
			if d := m.APs[id].Pos.Dist(s.Pos); d > cfg.DetectRange+1e-9 {
				t.Fatalf("AP %d detected at %v m > range", id, d)
			}
		}
	}
}

func TestSurveyDeterministic(t *testing.T) {
	city := planCity(62)
	m := mesh.Place(city, mesh.DefaultConfig())
	track := LineTrack(geo.Pt(0, 300), geo.Pt(800, 300))
	a := Survey(m, "x", track, DefaultConfig())
	b := Survey(m, "x", track, DefaultConfig())
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("nondeterministic sample count")
	}
	for i := range a.Samples {
		if len(a.Samples[i].BSSIDs) != len(b.Samples[i].BSSIDs) {
			t.Fatal("nondeterministic detections")
		}
	}
}

func TestMACsPerMeasurement(t *testing.T) {
	ds := Dataset{Samples: []Sample{
		{BSSIDs: []int{1, 2, 3}},
		{BSSIDs: nil},
		{BSSIDs: []int{7}},
	}}
	got := MACsPerMeasurement(ds)
	want := []float64{3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counts = %v", got)
		}
	}
}

func TestAPSpread(t *testing.T) {
	ds := Dataset{Samples: []Sample{
		{Pos: geo.Pt(0, 0), BSSIDs: []int{1, 2}},
		{Pos: geo.Pt(30, 0), BSSIDs: []int{1}},
		{Pos: geo.Pt(60, 0), BSSIDs: []int{1, 3}},
	}}
	spreads := APSpread(ds)
	// AP 1 seen at 0,30,60 → spread 60. APs 2 and 3 seen once → excluded.
	if len(spreads) != 1 || spreads[0] != 60 {
		t.Errorf("spreads = %v", spreads)
	}
}

func TestAPSpreadReflectsDetectRange(t *testing.T) {
	// The paper: spread estimates the transmission-region diameter, so it
	// should be bounded by 2×DetectRange and commonly approach it.
	city := planCity(63)
	m := mesh.Place(city, mesh.DefaultConfig())
	cfg := DefaultConfig()
	ds := Survey(m, "r", SerpentineTrack(geo.Rect{Min: geo.Pt(50, 50), Max: geo.Pt(750, 550)}, 60), cfg)
	spreads := APSpread(ds)
	if len(spreads) == 0 {
		t.Fatal("no spreads")
	}
	s := stats.Summarize(spreads)
	if s.Max > 2*cfg.DetectRange+1e-6 {
		t.Errorf("max spread %v exceeds diameter bound %v", s.Max, 2*cfg.DetectRange)
	}
	if s.P50 < cfg.DetectRange*0.3 {
		t.Errorf("median spread %v implausibly small for a thorough survey", s.P50)
	}
}

func TestCommonAPsDecaysWithDistance(t *testing.T) {
	city := planCity(64)
	m := mesh.Place(city, mesh.DefaultConfig())
	ds := Survey(m, "d", SerpentineTrack(geo.Rect{Min: geo.Pt(50, 50), Max: geo.Pt(750, 550)}, 70), DefaultConfig())
	b := CommonAPs(ds, 50, 0, 1)
	sums := b.Summaries()
	if len(sums) < 3 {
		t.Fatalf("bins = %d", len(sums))
	}
	// Pairs in the nearest bin share far more APs than pairs 300+ m apart.
	near := sums[0].Mean
	var far float64
	found := false
	for _, s := range sums {
		if s.Lo >= 300 {
			far = s.Mean
			found = true
			break
		}
	}
	if !found {
		t.Skip("survey too small for 300 m pairs")
	}
	if near <= far {
		t.Errorf("common APs do not decay: near %v <= far %v", near, far)
	}
	// Pairs beyond 2*DetectRange can share nothing.
	for _, s := range sums {
		if s.Lo >= 2*DefaultConfig().DetectRange && s.Max > 0 {
			t.Errorf("bin %v-%v shares %v APs beyond the detection diameter", s.Lo, s.Hi, s.Max)
		}
	}
}

func TestCommonAPsSampledPairs(t *testing.T) {
	city := planCity(65)
	m := mesh.Place(city, mesh.DefaultConfig())
	ds := Survey(m, "d", SerpentineTrack(geo.Rect{Min: geo.Pt(100, 100), Max: geo.Pt(500, 400)}, 80), DefaultConfig())
	full := CommonAPs(ds, 50, 0, 1)
	sampled := CommonAPs(ds, 50, 200, 1)
	nFull, nSampled := 0, 0
	for _, s := range full.Summaries() {
		nFull += s.N
	}
	for _, s := range sampled.Summaries() {
		nSampled += s.N
	}
	if nSampled > 200 || nSampled == 0 {
		t.Errorf("sampled pairs = %d", nSampled)
	}
	if nFull <= nSampled {
		t.Errorf("full pairs %d <= sampled %d", nFull, nSampled)
	}
	// Tiny datasets: CommonAPs handles n<2.
	if got := CommonAPs(Dataset{}, 50, 0, 1); len(got.Summaries()) != 0 {
		t.Error("empty dataset should produce no bins")
	}
}

func TestSerpentineTrack(t *testing.T) {
	r := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 100)}
	track := SerpentineTrack(r, 50)
	if len(track) != 6 { // rows at y=0,50,100, two points each
		t.Fatalf("track = %v", track)
	}
	for _, p := range track {
		if !r.Contains(p) {
			t.Errorf("track point %v outside area", p)
		}
	}
	if got := SerpentineTrack(r, 0); len(got) < 2 {
		t.Error("clamped spacing should still produce a track")
	}
}

func TestSurveyConfigDefaults(t *testing.T) {
	city := planCity(66)
	m := mesh.Place(city, mesh.DefaultConfig())
	ds := Survey(m, "a", LineTrack(geo.Pt(0, 300), geo.Pt(400, 300)), Config{Seed: 1})
	if len(ds.Samples) == 0 {
		t.Error("zero config should apply defaults and sample")
	}
}
