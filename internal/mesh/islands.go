package mesh

import (
	"sort"
	"sync"

	"citymesh/internal/geo"
)

// Island is one connected component of the AP graph, summarized.
type Island struct {
	// Component is the union-find root identifying the island.
	Component int
	// APs is the number of APs in the island.
	APs int
	// Buildings is the number of buildings with at least one AP in the
	// island.
	Buildings int
	// Centroid is the mean AP position.
	Centroid geo.Point
	// Bounds is the bounding box of the island's APs.
	Bounds geo.Rect
}

// Islands returns the AP-graph components sorted by descending AP count.
// Fractured cities — the paper calls out Washington D.C. — show several
// large islands here.
func (m *Mesh) Islands() []Island {
	byComp := make(map[int]*Island)
	seenBuilding := make(map[[2]int]bool)
	for i, ap := range m.APs {
		c := m.uf.find(i)
		isl, ok := byComp[c]
		if !ok {
			isl = &Island{Component: c, Bounds: geo.Rect{Min: ap.Pos, Max: ap.Pos}}
			byComp[c] = isl
		}
		isl.APs++
		isl.Centroid = isl.Centroid.Add(ap.Pos)
		isl.Bounds = isl.Bounds.ExpandToPoint(ap.Pos)
		key := [2]int{c, ap.Building}
		if !seenBuilding[key] {
			seenBuilding[key] = true
			isl.Buildings++
		}
	}
	out := make([]Island, 0, len(byComp))
	for _, isl := range byComp {
		isl.Centroid = isl.Centroid.Scale(1 / float64(isl.APs))
		out = append(out, *isl)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].APs != out[j].APs {
			return out[i].APs > out[j].APs
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// Bridge is a proposed chain of new relay APs connecting two islands — the
// paper's §4 remedy: "the addition of a small number of well-placed APs
// would serve to bridge connectivity between these islands".
type Bridge struct {
	// FromComponent and ToComponent are the island ids being joined.
	FromComponent, ToComponent int
	// From and To are the closest existing AP positions between the
	// islands.
	From, To geo.Point
	// Relays are the new AP positions, spaced just under the transmission
	// range along the From-To segment.
	Relays []geo.Point
}

// PlanBridges proposes bridges that connect every island to the largest
// one, smallest-gap-first, skipping islands below minAPs (noise). The
// number of relays per bridge is ceil(gap/range)-1.
func (m *Mesh) PlanBridges(minAPs int) []Bridge {
	islands := m.Islands()
	if len(islands) < 2 {
		return nil
	}
	main := islands[0]
	var bridges []Bridge
	for _, isl := range islands[1:] {
		if isl.APs < minAPs {
			continue
		}
		from, to, ok := m.closestAPs(main.Component, isl.Component)
		if !ok {
			continue
		}
		bridges = append(bridges, Bridge{
			FromComponent: main.Component,
			ToComponent:   isl.Component,
			From:          from,
			To:            to,
			Relays:        relayChain(from, to, m.Cfg.Range),
		})
	}
	sort.Slice(bridges, func(i, j int) bool {
		return len(bridges[i].Relays) < len(bridges[j].Relays)
	})
	return bridges
}

// closestAPs finds the closest AP pair between two components.
func (m *Mesh) closestAPs(compA, compB int) (geo.Point, geo.Point, bool) {
	var as, bs []geo.Point
	for i, ap := range m.APs {
		switch m.uf.find(i) {
		case compA:
			as = append(as, ap.Pos)
		case compB:
			bs = append(bs, ap.Pos)
		}
	}
	if len(as) == 0 || len(bs) == 0 {
		return geo.Point{}, geo.Point{}, false
	}
	var bestA, bestB geo.Point
	best := -1.0
	for _, a := range as {
		for _, b := range bs {
			d := a.Dist2(b)
			if best < 0 || d < best {
				best = d
				bestA, bestB = a, b
			}
		}
	}
	return bestA, bestB, true
}

// relayChain returns evenly spaced relay positions strictly between from
// and to such that consecutive hops (including to the endpoints) are under
// rng meters.
func relayChain(from, to geo.Point, rng float64) []geo.Point {
	d := from.Dist(to)
	if d <= rng {
		return nil
	}
	hops := int(d/rng*1.05) + 1 // margin keeps every hop strictly < rng
	relays := make([]geo.Point, 0, hops-1)
	for k := 1; k < hops; k++ {
		relays = append(relays, from.Lerp(to, float64(k)/float64(hops)))
	}
	return relays
}

// AddAPs inserts new relay APs (not inside any building; Building = -1) and
// rebuilds connectivity. It returns the ids of the new APs.
func (m *Mesh) AddAPs(positions []geo.Point) []int {
	ids := make([]int, 0, len(positions))
	for _, p := range positions {
		id := len(m.APs)
		m.APs = append(m.APs, AP{ID: id, Pos: p, Building: -1})
		m.grid.Insert(p)
		ids = append(ids, id)
	}
	// AddAPs is a build-time mutation (never concurrent with queries), so
	// re-arming the lazy adjacency cache with a fresh Once is safe.
	m.adjOnce = sync.Once{}
	m.adj = nil
	m.buildUnionFind()
	return ids
}
