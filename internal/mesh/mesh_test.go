package mesh

import (
	"math/rand"
	"testing"

	"citymesh/internal/citygen"
	"citymesh/internal/geo"
	"citymesh/internal/osm"
)

// squareCity makes n buildings of the given size at the given centers.
func squareCity(size float64, centers ...geo.Point) *osm.City {
	city := &osm.City{Name: "sq"}
	h := size / 2
	for i, c := range centers {
		fp := geo.Polygon{
			c.Add(geo.Pt(-h, -h)), c.Add(geo.Pt(h, -h)),
			c.Add(geo.Pt(h, h)), c.Add(geo.Pt(-h, h)),
		}
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding,
			Footprint: fp, Centroid: c,
		})
	}
	return city
}

func planCity(p *citygen.Plan) *osm.City {
	city := &osm.City{Name: p.Spec.Name, Bounds: p.Bounds}
	for i, b := range p.Buildings {
		city.Buildings = append(city.Buildings, &osm.Feature{
			ID: osm.ID(i + 1), Kind: osm.KindBuilding,
			Footprint: b.Footprint, Centroid: b.Footprint.Centroid(),
		})
	}
	return city
}

func TestPlaceAPsInsideFootprints(t *testing.T) {
	plan, err := citygen.Generate(citygen.SmallTestSpec(41))
	if err != nil {
		t.Fatal(err)
	}
	city := planCity(plan)
	m := Place(city, DefaultConfig())
	if m.NumAPs() < city.NumBuildings() {
		t.Fatalf("APs %d < buildings %d (MinPerBuilding=1)", m.NumAPs(), city.NumBuildings())
	}
	for _, ap := range m.APs {
		fp := city.Buildings[ap.Building].Footprint
		if !fp.Contains(ap.Pos) && fp.DistToPoint(ap.Pos) > 1 {
			t.Fatalf("AP %d at %v outside its building %d", ap.ID, ap.Pos, ap.Building)
		}
	}
}

func TestPlaceDensityScaling(t *testing.T) {
	// One 10000 m² building: at 1/200 density expect ~50 APs.
	city := squareCity(100, geo.Pt(0, 0))
	cfg := DefaultConfig()
	m := Place(city, cfg)
	if n := m.NumAPs(); n < 35 || n > 65 {
		t.Errorf("APs = %d, want ~50", n)
	}
	// Double density, roughly double APs.
	cfg2 := cfg
	cfg2.Density = 1.0 / 100.0
	m2 := Place(city, cfg2)
	if m2.NumAPs() < m.NumAPs()*3/2 {
		t.Errorf("doubled density gives %d vs %d APs", m2.NumAPs(), m.NumAPs())
	}
}

func TestPlaceDeterministic(t *testing.T) {
	city := squareCity(50, geo.Pt(0, 0), geo.Pt(100, 0))
	a := Place(city, DefaultConfig())
	b := Place(city, DefaultConfig())
	if a.NumAPs() != b.NumAPs() {
		t.Fatal("nondeterministic AP count")
	}
	for i := range a.APs {
		if a.APs[i].Pos != b.APs[i].Pos {
			t.Fatal("nondeterministic AP positions")
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 2
	c := Place(city, cfg)
	same := c.NumAPs() == a.NumAPs()
	if same {
		for i := range c.APs {
			if c.APs[i].Pos != a.APs[i].Pos {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical placements")
	}
}

func TestReachability(t *testing.T) {
	// Two buildings 30 m apart (centroid) — APs within 50 m range.
	near := squareCity(20, geo.Pt(0, 0), geo.Pt(40, 0))
	m := Place(near, DefaultConfig())
	if !m.Reachable(0, 1) {
		t.Error("adjacent buildings should be reachable")
	}
	// Two buildings 500 m apart — isolated.
	far := squareCity(20, geo.Pt(0, 0), geo.Pt(500, 0))
	mf := Place(far, DefaultConfig())
	if mf.Reachable(0, 1) {
		t.Error("distant buildings should be unreachable")
	}
	if mf.Reachable(-1, 0) || mf.Reachable(0, 99) {
		t.Error("out-of-range buildings should be unreachable")
	}
}

func TestReachableViaChain(t *testing.T) {
	// Chain of buildings spaced so that worst-case AP placement is still
	// within range of the next building (35 m centers + 14 m footprints:
	// max AP separation 49 m < 50 m range).
	centers := []geo.Point{}
	for i := 0; i < 6; i++ {
		centers = append(centers, geo.Pt(float64(i)*35, 0))
	}
	city := squareCity(14, centers...)
	m := Place(city, DefaultConfig())
	if !m.Reachable(0, 5) {
		t.Error("chain should connect end to end")
	}
}

func TestMinTransmissions(t *testing.T) {
	// Three buildings in a row, each hop within range.
	city := squareCity(10, geo.Pt(0, 0), geo.Pt(45, 0), geo.Pt(90, 0))
	cfg := DefaultConfig()
	cfg.Density = 1e-9 // MinPerBuilding=1 gives exactly one AP each
	m := Place(city, cfg)
	if m.NumAPs() != 3 {
		t.Fatalf("APs = %d, want 3", m.NumAPs())
	}
	hops, err := m.MinTransmissions(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 0->1->2 = 2 transmissions (the final receive is not a transmission).
	if hops != 2 {
		t.Errorf("hops = %d, want 2", hops)
	}
	if h, err := m.MinTransmissions(1, 1); err != nil || h != 0 {
		t.Errorf("self transmissions = %d, %v", h, err)
	}
	if _, err := m.MinTransmissions(0, 99); err == nil {
		t.Error("out of range should error")
	}
}

func TestMinTransmissionsUnreachable(t *testing.T) {
	city := squareCity(10, geo.Pt(0, 0), geo.Pt(1000, 0))
	m := Place(city, DefaultConfig())
	if _, err := m.MinTransmissions(0, 1); err != ErrUnreachable {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestMinTransmissionsMatchesBFSOnRandomMesh(t *testing.T) {
	plan, err := citygen.Generate(citygen.SmallTestSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	city := planCity(plan)
	m := Place(city, DefaultConfig())
	adj := m.Adjacency()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		src := rng.Intn(city.NumBuildings())
		dst := rng.Intn(city.NumBuildings())
		got, err := m.MinTransmissions(src, dst)
		// Reference: plain BFS from all src APs.
		dist := make([]int, len(m.APs))
		for i := range dist {
			dist[i] = -1
		}
		var q []int32
		for _, s := range m.byBuilding[src] {
			dist[s] = 0
			q = append(q, s)
		}
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					q = append(q, w)
				}
			}
		}
		want := -1
		for _, d := range m.byBuilding[dst] {
			if dist[d] >= 0 && (want < 0 || dist[d] < want) {
				want = dist[d]
			}
		}
		if src == dst {
			want = 0
		}
		if err != nil {
			if want >= 0 {
				t.Fatalf("trial %d: got unreachable, BFS says %d", trial, want)
			}
			continue
		}
		if got != want {
			t.Fatalf("trial %d: MinTransmissions=%d BFS=%d", trial, got, want)
		}
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	plan, err := citygen.Generate(citygen.SmallTestSpec(43))
	if err != nil {
		t.Fatal(err)
	}
	m := Place(planCity(plan), DefaultConfig())
	adj := m.Adjacency()
	for i, ns := range adj {
		for _, j := range ns {
			found := false
			for _, k := range adj[j] {
				if int(k) == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency asymmetric: %d->%d", i, j)
			}
		}
	}
	if m.NumLinks() <= 0 {
		t.Error("no links in a dense city")
	}
}

func TestReachabilityAgreesWithBFS(t *testing.T) {
	plan, err := citygen.Generate(citygen.SmallTestSpec(44))
	if err != nil {
		t.Fatal(err)
	}
	m := Place(planCity(plan), DefaultConfig())
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		a := rng.Intn(len(m.byBuilding))
		b := rng.Intn(len(m.byBuilding))
		_, err := m.MinTransmissions(a, b)
		if m.Reachable(a, b) != (err == nil) {
			t.Fatalf("union-find and BFS disagree for %d-%d", a, b)
		}
	}
}

func TestIslands(t *testing.T) {
	// Two clusters far apart: 3 buildings + 2 buildings.
	city := squareCity(14,
		geo.Pt(0, 0), geo.Pt(40, 0), geo.Pt(80, 0),
		geo.Pt(2000, 0), geo.Pt(2040, 0),
	)
	m := Place(city, DefaultConfig())
	islands := m.Islands()
	if len(islands) != 2 {
		t.Fatalf("islands = %d, want 2", len(islands))
	}
	if islands[0].APs < islands[1].APs {
		t.Error("islands not sorted by size")
	}
	if islands[0].Buildings != 3 || islands[1].Buildings != 2 {
		t.Errorf("island buildings = %d, %d", islands[0].Buildings, islands[1].Buildings)
	}
}

func TestPlanBridgesAndAddAPs(t *testing.T) {
	city := squareCity(14,
		geo.Pt(0, 0), geo.Pt(40, 0),
		geo.Pt(300, 0), geo.Pt(340, 0),
	)
	m := Place(city, DefaultConfig())
	if m.Reachable(0, 2) {
		t.Fatal("clusters should start disconnected")
	}
	bridges := m.PlanBridges(1)
	if len(bridges) != 1 {
		t.Fatalf("bridges = %d, want 1", len(bridges))
	}
	br := bridges[0]
	if len(br.Relays) == 0 {
		t.Fatal("bridge over a 200+ m gap needs relays")
	}
	// Consecutive relay hops must each be under range.
	chain := append([]geo.Point{br.From}, br.Relays...)
	chain = append(chain, br.To)
	for i := 0; i+1 < len(chain); i++ {
		if d := chain[i].Dist(chain[i+1]); d >= m.Cfg.Range {
			t.Fatalf("relay hop %d is %.1f m >= range", i, d)
		}
	}
	m.AddAPs(br.Relays)
	if !m.Reachable(0, 2) {
		t.Error("bridge should connect the islands")
	}
}

func TestPlanBridgesSingleIsland(t *testing.T) {
	city := squareCity(14, geo.Pt(0, 0), geo.Pt(40, 0))
	m := Place(city, DefaultConfig())
	if got := m.PlanBridges(1); got != nil {
		t.Errorf("single island should need no bridges, got %v", got)
	}
}

func TestRelayChain(t *testing.T) {
	if r := relayChain(geo.Pt(0, 0), geo.Pt(30, 0), 50); r != nil {
		t.Errorf("within-range chain = %v", r)
	}
	r := relayChain(geo.Pt(0, 0), geo.Pt(120, 0), 50)
	if len(r) < 2 {
		t.Fatalf("relays = %v", r)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	uf.union(0, 1)
	uf.union(3, 4)
	if uf.find(0) != uf.find(1) || uf.find(3) != uf.find(4) {
		t.Error("union failed")
	}
	if uf.find(0) == uf.find(3) {
		t.Error("distinct sets merged")
	}
	uf.union(1, 3)
	if uf.find(0) != uf.find(4) {
		t.Error("transitive union failed")
	}
	uf.union(0, 4) // already same set: no-op
	if uf.find(2) != 2 {
		t.Error("singleton moved")
	}
}

func BenchmarkPlace(b *testing.B) {
	plan, err := citygen.Generate(citygen.SmallTestSpec(45))
	if err != nil {
		b.Fatal(err)
	}
	city := planCity(plan)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Place(city, DefaultConfig())
	}
}

func BenchmarkMinTransmissions(b *testing.B) {
	plan, err := citygen.Generate(citygen.SmallTestSpec(46))
	if err != nil {
		b.Fatal(err)
	}
	city := planCity(plan)
	m := Place(city, DefaultConfig())
	m.Adjacency()
	n := city.NumBuildings()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = m.MinTransmissions(i%n, (i*13+7)%n)
	}
}
