// Package mesh realizes the physical AP layer of a city: it places Wi-Fi
// access points inside building footprints at a configurable density,
// connects APs whose distance is below the transmission range into the AP
// graph (the simulator's ground truth, §4), and answers reachability
// queries (union-find) and minimum-transmission-count queries (BFS).
//
// The AP graph is *never* consulted by CityMesh routing — the building
// graph predicts connectivity from the map alone — but the evaluation uses
// it to measure how well the prediction holds.
package mesh

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"citymesh/internal/geo"
	"citymesh/internal/osm"
)

// Config parameterizes AP placement and connectivity.
type Config struct {
	// Density is the AP density inside building footprints, in APs per
	// square meter. The paper's evaluation uses 1 AP per 200 m².
	Density float64
	// Range is the symmetric transmission range cutoff in meters (50 m in
	// the paper).
	Range float64
	// Seed drives the deterministic placement RNG.
	Seed int64
	// MinPerBuilding floors the AP count of any building large enough to
	// count at all; the paper's premise is that occupied buildings host at
	// least one AP.
	MinPerBuilding int
}

// DefaultConfig matches the paper: 1 AP / 200 m², 50 m range.
func DefaultConfig() Config {
	return Config{Density: 1.0 / 200.0, Range: 50, Seed: 1, MinPerBuilding: 1}
}

// AP is one placed access point.
type AP struct {
	ID       int
	Pos      geo.Point
	Building int // dense building index
}

// Mesh is the realized AP network of a city.
type Mesh struct {
	City *osm.City
	Cfg  Config
	APs  []AP

	grid *geo.Grid
	// byBuilding lists AP ids per building.
	byBuilding [][]int32
	uf         *unionFind
	adjOnce    sync.Once
	adj        [][]int32
}

// Place samples AP locations inside every building footprint via rejection
// sampling in the footprint's bounding box. The expected AP count of a
// building is its area times the density, floored at MinPerBuilding.
func Place(city *osm.City, cfg Config) *Mesh {
	if cfg.Density <= 0 {
		cfg.Density = 1.0 / 200.0
	}
	if cfg.Range <= 0 {
		cfg.Range = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Mesh{
		City:       city,
		Cfg:        cfg,
		grid:       geo.NewGrid(cfg.Range),
		byBuilding: make([][]int32, len(city.Buildings)),
	}
	for bi, b := range city.Buildings {
		area := b.Footprint.Area()
		n := int(math.Floor(area*cfg.Density + rng.Float64()))
		if n < cfg.MinPerBuilding {
			n = cfg.MinPerBuilding
		}
		bounds := b.Footprint.Bounds()
		for k := 0; k < n; k++ {
			p, ok := samplePoint(rng, b.Footprint, bounds)
			if !ok {
				continue
			}
			id := len(m.APs)
			m.APs = append(m.APs, AP{ID: id, Pos: p, Building: bi})
			m.grid.Insert(p)
			m.byBuilding[bi] = append(m.byBuilding[bi], int32(id))
		}
	}
	m.buildUnionFind()
	return m
}

// samplePoint rejection-samples a point inside pg; it gives up after a
// bounded number of attempts for degenerate footprints.
func samplePoint(rng *rand.Rand, pg geo.Polygon, bounds geo.Rect) (geo.Point, bool) {
	for try := 0; try < 64; try++ {
		p := geo.Pt(
			bounds.Min.X+rng.Float64()*bounds.Width(),
			bounds.Min.Y+rng.Float64()*bounds.Height(),
		)
		if pg.Contains(p) {
			return p, true
		}
	}
	// Degenerate (zero-area) footprint: fall back to its centroid.
	c := pg.Centroid()
	if len(pg) > 0 {
		return c, true
	}
	return geo.Point{}, false
}

// NumAPs returns the number of placed APs.
func (m *Mesh) NumAPs() int { return len(m.APs) }

// Grid exposes the spatial index over AP positions for range queries beyond
// the transmission radius (e.g. the measurement study's beacon detection).
func (m *Mesh) Grid() *geo.Grid { return m.grid }

// APsInBuilding returns the AP ids hosted by the given building.
func (m *Mesh) APsInBuilding(b int) []int32 { return m.byBuilding[b] }

// Neighbors calls fn for every AP within transmission range of AP id
// (excluding itself).
func (m *Mesh) Neighbors(id int, fn func(other int)) {
	pos := m.APs[id].Pos
	m.grid.WithinRadius(pos, m.Cfg.Range, func(j int, _ geo.Point) bool {
		if j != id {
			fn(j)
		}
		return true
	})
}

// Adjacency returns (building and caching) the AP adjacency lists. For
// large meshes this is the dominant memory cost, so it is built lazily —
// under sync.Once, because concurrent sim.Run calls over one Network all
// land here on their first BFS.
func (m *Mesh) Adjacency() [][]int32 {
	m.adjOnce.Do(func() {
		m.adj = make([][]int32, len(m.APs))
		for i := range m.APs {
			m.Neighbors(i, func(j int) {
				m.adj[i] = append(m.adj[i], int32(j))
			})
		}
	})
	return m.adj
}

// NumLinks returns the number of undirected AP-AP links.
func (m *Mesh) NumLinks() int {
	n := 0
	for _, a := range m.Adjacency() {
		n += len(a)
	}
	return n / 2
}

func (m *Mesh) buildUnionFind() {
	m.uf = newUnionFind(len(m.APs))
	for i := range m.APs {
		m.Neighbors(i, func(j int) {
			if j > i {
				m.uf.union(i, j)
			}
		})
	}
	// Flatten every parent chain now so find() is a pure read afterwards.
	// Path compression during queries would be a write race once parallel
	// sweeps call Reachable concurrently.
	m.uf.flatten()
}

// Reachable reports whether any AP in building a can reach any AP in
// building b across the AP graph. This is the paper's Figure 6
// "reachability" metric.
func (m *Mesh) Reachable(a, b int) bool {
	if a < 0 || b < 0 || a >= len(m.byBuilding) || b >= len(m.byBuilding) {
		return false
	}
	for _, x := range m.byBuilding[a] {
		for _, y := range m.byBuilding[b] {
			if m.uf.find(int(x)) == m.uf.find(int(y)) {
				return true
			}
		}
	}
	return false
}

// ComponentOf returns the AP-graph component id of AP id.
func (m *Mesh) ComponentOf(id int) int { return m.uf.find(id) }

// ErrUnreachable is returned by MinTransmissions when no AP path exists.
var ErrUnreachable = fmt.Errorf("mesh: destination unreachable in AP graph")

// MinTransmissions returns the minimum number of broadcasts needed to carry
// a packet from any AP in building src to any AP in building dst: the BFS
// hop count from the source AP set to the destination AP set. It is the
// denominator of the paper's transmission-overhead metric ("the absolute
// best case").
func (m *Mesh) MinTransmissions(src, dst int) (int, error) {
	if src == dst {
		return 0, nil
	}
	if src < 0 || dst < 0 || src >= len(m.byBuilding) || dst >= len(m.byBuilding) {
		return 0, fmt.Errorf("mesh: building out of range")
	}
	adj := m.Adjacency()
	dist := make([]int32, len(m.APs))
	for i := range dist {
		dist[i] = -1
	}
	var queue []int32
	for _, s := range m.byBuilding[src] {
		dist[s] = 0
		queue = append(queue, s)
	}
	inDst := make(map[int32]bool, len(m.byBuilding[dst]))
	for _, d := range m.byBuilding[dst] {
		inDst[d] = true
		if dist[d] == 0 {
			return 0, nil // shared AP (shouldn't happen, but harmless)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if dist[w] >= 0 {
				continue
			}
			dist[w] = dist[v] + 1
			if inDst[w] {
				return int(dist[w]), nil
			}
			queue = append(queue, w)
		}
	}
	return 0, ErrUnreachable
}

// unionFind is a weighted quick-union. Path compression happens only in
// flatten(), called once at build time; after that find is read-only and
// safe for concurrent callers.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// flatten points every element directly at its root, so later find calls
// never write to parent.
func (uf *unionFind) flatten() {
	for i := range uf.parent {
		uf.parent[i] = int32(uf.root(i))
	}
}

func (uf *unionFind) root(x int) int {
	p := int32(x)
	for uf.parent[p] != p {
		p = uf.parent[p]
	}
	return int(p)
}

func (uf *unionFind) find(x int) int {
	p := int32(x)
	for uf.parent[p] != p {
		p = uf.parent[p]
	}
	return int(p)
}

func (uf *unionFind) union(a, b int) {
	ra, rb := int32(uf.find(a)), int32(uf.find(b))
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}
