package citymesh_test

import (
	"testing"

	"citymesh"
	"citymesh/internal/citygen"
)

func TestPublicAPIQuickstart(t *testing.T) {
	spec := citygen.SmallTestSpec(7)
	net, err := citymesh.FromSpec(spec, citymesh.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := net.RandomPairs(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if !net.Reachable(p[0], p[1]) {
			continue
		}
		res, err := net.Send(p[0], p[1], []byte("hello"), citymesh.DefaultSimConfig())
		if err != nil {
			continue
		}
		if res.Sim.Delivered {
			return // one delivered message is enough for the smoke test
		}
	}
	t.Fatal("no message delivered through the public API")
}

func TestPresetNames(t *testing.T) {
	names := citymesh.PresetNames()
	if len(names) < 6 {
		t.Fatalf("presets = %v", names)
	}
	if _, err := citymesh.FromPreset("definitely-not-a-city", citymesh.DefaultConfig()); err == nil {
		t.Error("unknown preset should error")
	}
}
