package citymesh_test

import (
	"testing"

	"citymesh"
	"citymesh/internal/citygen"
)

func TestPublicAPIQuickstart(t *testing.T) {
	spec := citygen.SmallTestSpec(7)
	net, err := citymesh.FromSpec(spec, citymesh.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := net.RandomPairs(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if !net.Reachable(p[0], p[1]) {
			continue
		}
		res, err := net.Send(p[0], p[1], []byte("hello"), citymesh.DefaultSimConfig())
		if err != nil {
			continue
		}
		if res.Sim.Delivered {
			return // one delivered message is enough for the smoke test
		}
	}
	t.Fatal("no message delivered through the public API")
}

// TestPublicAPIResilientDelivery exercises the resilient-delivery facade:
// the escalation ladder, the route-health memory, and store-and-heal, all
// through the root package without importing internal/.
func TestPublicAPIResilientDelivery(t *testing.T) {
	spec := citygen.SmallTestSpec(7)
	net, err := citymesh.FromSpec(spec, citymesh.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := net.RandomPairs(1, 50)
	if err != nil {
		t.Fatal(err)
	}

	rc := citymesh.DefaultReliableConfig()
	rc.Seed = 1
	rc.Health = citymesh.NewHealthMap(citymesh.DefaultHealthConfig())
	if err := rc.Validate(); err != nil {
		t.Fatalf("DefaultReliableConfig().Validate() = %v", err)
	}

	delivered := false
	for _, p := range pairs {
		if !net.Reachable(p[0], p[1]) {
			continue
		}
		res, err := net.SendReliable(p[0], p[1], []byte("are you safe?"), citymesh.DefaultSimConfig(), rc)
		if err != nil {
			continue
		}
		if res.Delivered {
			delivered = true
			if res.Rung < citymesh.RungDirect || res.Rung >= citymesh.Rung(citymesh.NumRungs) {
				t.Errorf("winning rung %v out of range", res.Rung)
			}
			break
		}
	}
	if !delivered {
		t.Fatal("no message delivered through the SendReliable facade")
	}

	// The eventual path must at least run and report a coherent outcome.
	ec := citymesh.DefaultEventualConfig()
	for _, p := range pairs {
		if !net.Reachable(p[0], p[1]) {
			continue
		}
		res, err := net.SendEventually(p[0], p[1], []byte("ping"), citymesh.DefaultSimConfig(), rc, ec)
		if err != nil {
			continue
		}
		if !res.Delivered && !res.Parked {
			t.Errorf("SendEventually neither delivered nor parked: %+v", res)
		}
		break
	}
}

func TestPresetNames(t *testing.T) {
	names := citymesh.PresetNames()
	if len(names) < 6 {
		t.Fatalf("presets = %v", names)
	}
	if _, err := citymesh.FromPreset("definitely-not-a-city", citymesh.DefaultConfig()); err == nil {
		t.Error("unknown preset should error")
	}
}

func TestPublicAPIFederation(t *testing.T) {
	fed, err := citymesh.GenerateFederation(citymesh.FederationSpec{Cities: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	in := citymesh.NewInternetwork()
	for _, fc := range fed.Cities {
		net, err := citymesh.FromSpec(fc.Spec, citymesh.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := in.AddRegion(&citymesh.Region{
			ID: citymesh.RegionID(fc.Name), Net: net, Gateway: 0, Pos: fc.PosKm,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range fed.Links {
		if err := in.AddLink(citymesh.InterLink{
			A:              citymesh.RegionID(fed.Cities[l.A].Name),
			B:              citymesh.RegionID(fed.Cities[l.B].Name),
			LatencySeconds: l.LatencyS, BandwidthMbps: l.BandwidthMbps,
		}); err != nil {
			t.Fatal(err)
		}
	}
	path, _, err := in.RegionPath(citymesh.RegionID(fed.Cities[0].Name), citymesh.RegionID(fed.Cities[1].Name))
	if err != nil || len(path) != 2 {
		t.Fatalf("region path = %v, %v", path, err)
	}
	res, err := in.Send(
		citymesh.InterAddress{Region: path[0], Building: 0},
		citymesh.InterAddress{Region: path[1], Building: 0},
		[]byte("hi"), citymesh.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.EndToEndLatency(); ok != res.Delivered {
		t.Errorf("latency ok=%v disagrees with Delivered=%v", ok, res.Delivered)
	}
}
