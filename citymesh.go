// Package citymesh is a from-scratch Go implementation of CityMesh, the
// city-scale decentralized fallback network (DFN) proposed in "The Case for
// Decentralized Fallback Networks" (HotNets '24).
//
// CityMesh routes messages across a city's existing Wi-Fi access points
// with zero routing metadata exchanged between nodes: the sender computes a
// building route over a graph derived from geospatial map data, compresses
// it into waypoint buildings, and every AP makes a purely local rebroadcast
// decision — "am I inside one of the conduits between those waypoints?"
//
// The package re-exports the library's public surface; the implementation
// lives in internal/ packages:
//
//   - internal/osm — OpenStreetMap parsing and footprint extraction
//   - internal/citygen — synthetic city generation (offline evaluation)
//   - internal/buildinggraph — cubed-weight building graph + Dijkstra
//   - internal/conduit — the paper's route-compression algorithm
//   - internal/packet — the wire format
//   - internal/mesh — AP placement and the realized AP graph
//   - internal/sim — the discrete-event radio simulator
//   - internal/routing — the conduit policy and baselines
//   - internal/postbox — self-certifying names and sealed messages
//   - internal/agent — the per-AP software agent (in-proc and UDP)
//   - internal/experiments — the paper's tables and figures
//
// Quickstart:
//
//	net, err := citymesh.FromPreset("boston", citymesh.DefaultConfig())
//	if err != nil { ... }
//	res, err := net.Send(src, dst, []byte("are you safe?"), citymesh.DefaultSimConfig())
package citymesh

import (
	"io"

	"citymesh/internal/citygen"
	"citymesh/internal/conduit"
	"citymesh/internal/core"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
	"citymesh/internal/sim"
)

// Config re-exports the deployment configuration.
type Config = core.Config

// Network re-exports the deployment type.
type Network = core.Network

// SendResult re-exports the end-to-end send outcome.
type SendResult = core.SendResult

// Route re-exports the compressed building route.
type Route = conduit.Route

// Packet re-exports the wire packet.
type Packet = packet.Packet

// SimConfig re-exports the simulator configuration.
type SimConfig = sim.Config

// SimResult re-exports the simulator outcome.
type SimResult = sim.Result

// City re-exports the planar city map.
type City = osm.City

// CitySpec re-exports the synthetic city specification.
type CitySpec = citygen.Spec

// DefaultConfig returns the paper's evaluation parameters (50 m range,
// 1 AP / 200 m², conduit width 50 m, cubed edge weights).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultSimConfig returns the default event-simulation parameters.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// FromPreset builds a network over one of the built-in synthetic cities
// (see PresetNames).
func FromPreset(name string, cfg Config) (*Network, error) { return core.FromPreset(name, cfg) }

// FromSpec builds a network over an explicitly specified synthetic city.
func FromSpec(spec CitySpec, cfg Config) (*Network, error) { return core.FromSpec(spec, cfg) }

// FromOSM builds a network from an OpenStreetMap XML extract — the
// production path for real map data.
func FromOSM(r io.Reader, name string, cfg Config) (*Network, error) {
	return core.FromOSM(r, name, cfg)
}

// PresetNames lists the built-in synthetic cities.
func PresetNames() []string { return citygen.PresetNames() }
