// Package citymesh is a from-scratch Go implementation of CityMesh, the
// city-scale decentralized fallback network (DFN) proposed in "The Case for
// Decentralized Fallback Networks" (HotNets '24).
//
// CityMesh routes messages across a city's existing Wi-Fi access points
// with zero routing metadata exchanged between nodes: the sender computes a
// building route over a graph derived from geospatial map data, compresses
// it into waypoint buildings, and every AP makes a purely local rebroadcast
// decision — "am I inside one of the conduits between those waypoints?"
//
// The package re-exports the library's public surface; the implementation
// lives in internal/ packages:
//
//   - internal/osm — OpenStreetMap parsing and footprint extraction
//   - internal/citygen — synthetic city generation (offline evaluation)
//   - internal/buildinggraph — cubed-weight building graph + Dijkstra
//   - internal/conduit — the paper's route-compression algorithm
//   - internal/packet — the wire format
//   - internal/mesh — AP placement and the realized AP graph
//   - internal/sim — the discrete-event radio simulator
//   - internal/routing — the conduit policy and baselines
//   - internal/postbox — self-certifying names and sealed messages
//   - internal/agent — the per-AP software agent (in-proc and UDP)
//   - internal/experiments — the paper's tables and figures
//
// Quickstart:
//
//	net, err := citymesh.FromPreset("boston", citymesh.DefaultConfig())
//	if err != nil { ... }
//	res, err := net.Send(src, dst, []byte("are you safe?"), citymesh.DefaultSimConfig())
package citymesh

import (
	"io"

	"citymesh/internal/citygen"
	"citymesh/internal/conduit"
	"citymesh/internal/core"
	"citymesh/internal/health"
	"citymesh/internal/internetwork"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
	"citymesh/internal/sim"
)

// Config re-exports the deployment configuration.
type Config = core.Config

// Network re-exports the deployment type.
type Network = core.Network

// SendResult re-exports the end-to-end send outcome.
type SendResult = core.SendResult

// Route re-exports the compressed building route.
type Route = conduit.Route

// Packet re-exports the wire packet.
type Packet = packet.Packet

// SimConfig re-exports the simulator configuration.
type SimConfig = sim.Config

// SimResult re-exports the simulator outcome.
type SimResult = sim.Result

// SimEngine re-exports the reusable simulation engine. Build one per
// (mesh, city, policy) — or take the Network's shared instance via
// Network.Engine() — and call Run repeatedly; warm runs draw pooled
// scratch and allocate nothing.
type SimEngine = sim.Engine

// NodeSet re-exports the dense AP-index bitset the simulator and fault
// injectors use for failure and blackhole sets.
type NodeSet = sim.NodeSet

// NewNodeSet returns an empty NodeSet with capacity for indices [0, n).
func NewNodeSet(n int) NodeSet { return sim.NewNodeSet(n) }

// City re-exports the planar city map.
type City = osm.City

// CitySpec re-exports the synthetic city specification.
type CitySpec = citygen.Spec

// DefaultConfig returns the paper's evaluation parameters (50 m range,
// 1 AP / 200 m², conduit width 50 m, cubed edge weights).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultSimConfig returns the default event-simulation parameters.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// FromPreset builds a network over one of the built-in synthetic cities
// (see PresetNames).
func FromPreset(name string, cfg Config) (*Network, error) { return core.FromPreset(name, cfg) }

// FromSpec builds a network over an explicitly specified synthetic city.
func FromSpec(spec CitySpec, cfg Config) (*Network, error) { return core.FromSpec(spec, cfg) }

// FromOSM builds a network from an OpenStreetMap XML extract — the
// production path for real map data.
func FromOSM(r io.Reader, name string, cfg Config) (*Network, error) {
	return core.FromOSM(r, name, cfg)
}

// PresetNames lists the built-in synthetic cities.
func PresetNames() []string { return citygen.PresetNames() }

// Resilient delivery. A plain Send stops at the first failure; disasters
// are exactly when that is not good enough. SendReliable escalates through
// a ladder of recovery strategies (retry → widened conduit → multipath →
// scoped flood), SendEventually adds partition-aware store-and-heal on
// top, and a HealthMap gives a sender decaying per-building suspicion
// memory so later sends plan around known damage.

// ReliableConfig re-exports the escalation-ladder configuration.
type ReliableConfig = core.ReliableConfig

// ReliableResult re-exports the ladder outcome (winning rung, per-attempt
// record, total broadcast cost).
type ReliableResult = core.ReliableResult

// Rung re-exports the ladder-step identifier carried by ReliableResult.
type Rung = core.Rung

// The ladder's rungs, in escalation order.
const (
	RungDirect    = core.RungDirect
	RungRetry     = core.RungRetry
	RungWiden     = core.RungWiden
	RungMultipath = core.RungMultipath
	RungFlood     = core.RungFlood
)

// NumRungs re-exports the count of real ladder rungs.
const NumRungs = core.NumRungs

// EventualConfig re-exports the store-and-heal scheduler configuration.
type EventualConfig = core.EventualConfig

// EventualResult re-exports the store-and-heal outcome (parked, healed,
// time-to-heal).
type EventualResult = core.EventualResult

// MultipathResult re-exports the k-route diverse-send outcome.
type MultipathResult = core.MultipathResult

// HealthConfig re-exports the route-health memory configuration.
type HealthConfig = health.Config

// HealthMap re-exports the per-sender route-health memory: decaying
// suspicion scores that SendReliable feeds and damage-aware planning
// consults. Wire one into ReliableConfig.Health to route around damage
// learned from earlier sends.
type HealthMap = health.Map

// DefaultReliableConfig returns the evaluation ladder settings (2 retries,
// 2× conduit widening, 3-route multipath, TTL-scoped flood).
func DefaultReliableConfig() ReliableConfig { return core.DefaultReliableConfig() }

// DefaultEventualConfig returns the evaluation healing scheduler (up to 8
// ladder runs, 0.5 s → 30 s capped exponential backoff, park after 2
// exhaustions).
func DefaultEventualConfig() EventualConfig { return core.DefaultEventualConfig() }

// DefaultHealthConfig returns the evaluation route-health memory settings.
func DefaultHealthConfig() HealthConfig { return health.DefaultConfig() }

// NewHealthMap creates a route-health memory; zero config fields use the
// defaults.
func NewHealthMap(cfg HealthConfig) *HealthMap { return health.New(cfg) }

// Internetwork re-exports the two-level federation of regional DFNs:
// level 0 routes inside a member city through conduits, level 1 routes
// between regions over a gateway summary graph with the same Decide
// kernel applied one level up.
type Internetwork = internetwork.Internetwork

// Region re-exports one federation member: a regional network, its
// gateway buildings (in failover priority order) and its anchor position
// on the federation plane.
type Region = internetwork.Region

// RegionID re-exports the federation-unique region name.
type RegionID = internetwork.RegionID

// InterLink re-exports one long-haul link between two regions.
type InterLink = internetwork.Link

// InterAddress re-exports the hierarchical (region, building) address.
type InterAddress = internetwork.Address

// InterSendResult re-exports the outcome of a hierarchical send: the
// traversed region path, every attempted leg, and the failure cause when
// undelivered.
type InterSendResult = internetwork.SendResult

// InterSendOptions re-exports the hierarchical send knobs (seed, per-leg
// ladder override, reroute budget, level-1 conduit width).
type InterSendOptions = internetwork.SendOptions

// NewInternetwork creates an empty federation.
func NewInternetwork() *Internetwork { return internetwork.New() }

// FederationSpec re-exports the synthetic federation generator input
// (member-city count, link topology, seed, spacing).
type FederationSpec = citygen.FederationSpec

// Federation re-exports a generated federation: member-city specs plus
// the long-haul link graph.
type Federation = citygen.Federation

// GenerateFederation re-exports the synthetic federation generator.
func GenerateFederation(fs FederationSpec) (*Federation, error) {
	return citygen.GenerateFederation(fs)
}
