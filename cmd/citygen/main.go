// Command citygen generates a synthetic city and writes it as OSM XML —
// the offline stand-in for downloading a real OpenStreetMap extract. The
// output feeds straight back into the library via citymesh.FromOSM.
//
// Usage:
//
//	citygen -list
//	citygen -preset boston -o boston.osm
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"citymesh/internal/citygen"
	"citymesh/internal/osm"
)

func main() {
	var (
		preset = flag.String("preset", "boston", "preset city to generate")
		out    = flag.String("o", "-", "output file (default stdout)")
		seed   = flag.Int64("seed", 0, "override the preset's seed (0 keeps it)")
		list   = flag.Bool("list", false, "list presets and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range citygen.PresetNames() {
			fmt.Println(n)
		}
		return
	}
	spec, ok := citygen.Preset(*preset)
	if !ok {
		fail(fmt.Errorf("unknown preset %q (try -list)", *preset))
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	plan, err := citygen.Generate(spec)
	if err != nil {
		fail(err)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := osm.Write(w, plan.Document()); err != nil {
		fail(err)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "citygen: %s: %d buildings, %d water, %d parks, %d highways\n",
		spec.Name, len(plan.Buildings), len(plan.Water), len(plan.Parks), len(plan.Highways))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "citygen:", err)
	os.Exit(1)
}
