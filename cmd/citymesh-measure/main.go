// Command citymesh-measure reproduces the paper's §2 measurement study on a
// synthetic city: Table 1 (measurements and unique APs per survey area),
// Figure 1a/1b (CDF medians of MACs-per-measurement and per-AP spread), and
// Figure 2 (common APs vs measurement-pair distance).
//
// Usage:
//
//	citymesh-measure [-seed 1] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"citymesh/internal/experiments"
	"citymesh/internal/svgrender"
)

func main() {
	var (
		seed = flag.Int64("seed", 1, "survey seed")
		csv  = flag.Bool("csv", false, "emit quantile CSV instead of tables")
		svg  = flag.String("svg", "", "also write Figure 1a/1b/2 SVG charts to this directory")
		par  = flag.Int("par", 0, "worker parallelism (0 = GOMAXPROCS, 1 = serial); output is identical either way")
	)
	flag.Parse()

	res, err := experiments.MeasurementStudy(*seed, *par)
	if err != nil {
		fmt.Fprintln(os.Stderr, "citymesh-measure:", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(res.CSV())
		return
	}
	fmt.Println(res.Table1Text())
	fmt.Println(res.Figure1Text())
	fmt.Println(res.Figure2Text())

	if *svg != "" {
		if err := writeCharts(res, *svg); err != nil {
			fmt.Fprintln(os.Stderr, "citymesh-measure:", err)
			os.Exit(1)
		}
	}
}

// writeCharts renders the Figure 1a/1b CDFs and per-area Figure 2 box
// plots as SVG files.
func writeCharts(res *experiments.MeasurementStudyResult, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var macs, spreads []svgrender.CDFSeries
	for _, area := range res.Areas {
		macs = append(macs, svgrender.CDFSeries{Name: area, CDF: res.MACsPerMeasurement[area]})
		spreads = append(spreads, svgrender.CDFSeries{Name: area, CDF: res.Spread[area]})
	}
	write := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return err
		}
		fmt.Println("wrote", f.Name())
		return nil
	}
	if err := write("fig1a_macs_cdf.svg", func(f *os.File) error {
		return svgrender.RenderCDFChart(f, "Figure 1a: MACs per measurement", "MAC addresses seen", macs)
	}); err != nil {
		return err
	}
	if err := write("fig1b_spread_cdf.svg", func(f *os.File) error {
		return svgrender.RenderCDFChart(f, "Figure 1b: per-AP location spread", "spread (m)", spreads)
	}); err != nil {
		return err
	}
	for _, area := range res.Areas {
		area := area
		if err := write("fig2_"+area+"_common_aps.svg", func(f *os.File) error {
			return svgrender.RenderBinnedBoxChart(f,
				"Figure 2: common APs vs pair distance ("+area+")",
				"measurement-pair distance (m)", "APs observed in common",
				res.CommonByDistance[area])
		}); err != nil {
			return err
		}
	}
	return nil
}
