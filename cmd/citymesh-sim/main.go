// Command citymesh-sim reproduces the paper's Figure 6 — reachability,
// deliverability and transmission overhead for each (synthetic) city — and,
// with fault injection enabled, the disaster-scenario resilience sweep:
// delivery rate versus failure fraction for plain conduit routing and for
// the SendReliable escalation ladder (retry → widen → multipath → flood).
// The -heal flag runs the self-healing evaluation instead: the ladder with
// per-sender route-health memory against the plain ladder, plus the
// partition-aware store-and-heal phase across a recovery.
//
// Usage:
//
//	citymesh-sim [-cities boston,dc] [-reach-pairs 1000] [-deliver-pairs 50]
//	             [-seed 1] [-scale 1.0] [-csv]
//	citymesh-sim -fail-mode=uniform -fail-frac=0.1,0.3,0.5 -reliable
//	citymesh-sim -cities=boston -fail-mode=flood -fail-frac=0.3 -reliable
//	citymesh-sim -heal -fail-mode=disk -fail-frac=0.3 -heal-decay=30 -recover-at=60
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"citymesh/internal/experiments"
	"citymesh/internal/faults"
	"citymesh/internal/health"
	"citymesh/internal/svgrender"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam: flags parse from args,
// output goes to the writers, and the exit code is returned instead of
// calling os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("citymesh-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cities       = fs.String("cities", "", "comma-separated preset cities (default: all)")
		reachPairs   = fs.Int("reach-pairs", 1000, "random building pairs tested for reachability")
		deliverPairs = fs.Int("deliver-pairs", 50, "reachable pairs run through the event simulation")
		seed         = fs.Int64("seed", 1, "experiment seed")
		scale        = fs.Float64("scale", 1.0, "shrink city extents by this factor (0,1]")
		csv          = fs.Bool("csv", false, "emit CSV instead of a table")
		svg          = fs.String("svg", "", "also render the Figure 6 bar chart to this SVG file")

		failMode = fs.String("fail-mode", "", "fault injector: "+strings.Join(faults.Modes(), ", ")+
			" (enables the resilience sweep)")
		failFrac = fs.String("fail-frac", "0,0.1,0.2,0.3,0.4,0.5",
			"comma-separated failure fractions to sweep (the -heal run uses the first value)")
		reliable = fs.Bool("reliable", false,
			"also run the SendReliable escalation ladder per pair (resilience sweep always reports both)")
		pairs = fs.Int("pairs", 30, "building pairs per resilience cell")

		heal = fs.Bool("heal", false,
			"run the self-healing evaluation: ladder+route-health memory vs plain ladder, then store-and-heal")
		healDecay = fs.Float64("heal-decay", 0,
			"suspicion decay e-folding time in sim seconds (0 = default)")
		recoverAt = fs.Float64("recover-at", 60,
			"sim instant at which injected failures heal during the -heal store-and-heal phase (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *heal {
		return runSelfHealing(fs, *cities, *failMode, *failFrac, *pairs, *seed,
			*scale, *healDecay, *recoverAt, *csv, stdout, stderr)
	}
	if *failMode != "" && faults.Mode(*failMode) != faults.ModeNone {
		return runResilience(*cities, *failMode, *failFrac, *pairs, *seed, *scale,
			*csv, *reliable, stdout, stderr)
	}

	cfg := experiments.Figure6Config{
		ReachPairs:   *reachPairs,
		DeliverPairs: *deliverPairs,
		Seed:         *seed,
		Scale:        *scale,
	}
	if *cities != "" {
		cfg.Cities = strings.Split(*cities, ",")
	}
	rows, err := experiments.Figure6(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "citymesh-sim:", err)
		return 1
	}
	if *csv {
		fmt.Fprint(stdout, experiments.Figure6CSV(rows))
	} else {
		fmt.Fprint(stdout, experiments.Figure6Text(rows))
	}
	if *svg != "" {
		groups := make([]svgrender.BarGroup, 0, len(rows))
		for _, r := range rows {
			groups = append(groups, svgrender.BarGroup{
				Label:  r.City,
				Values: []float64{r.Reachability, r.Deliverability},
			})
		}
		f, err := os.Create(*svg)
		if err != nil {
			fmt.Fprintln(stderr, "citymesh-sim:", err)
			return 1
		}
		defer f.Close()
		if err := svgrender.RenderGroupedBarChart(f,
			"Figure 6: reachability and deliverability per city",
			[]string{"reachability", "deliverability"}, groups, 1); err != nil {
			fmt.Fprintln(stderr, "citymesh-sim:", err)
			return 1
		}
		fmt.Fprintln(stdout, "wrote", f.Name())
	}
	return 0
}

// parseFracs parses a comma-separated failure-fraction list.
func parseFracs(fracsCSV string, stderr io.Writer) ([]float64, bool) {
	var fracs []float64
	for _, s := range strings.Split(fracsCSV, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || f < 0 || f > 1 {
			fmt.Fprintf(stderr, "citymesh-sim: bad -fail-frac value %q\n", s)
			return nil, false
		}
		fracs = append(fracs, f)
	}
	return fracs, true
}

// runResilience executes the fault-injection sweep. The -reliable flag is
// accepted for CLI symmetry with the README examples; the sweep reports
// plain and ladder delivery side by side either way.
func runResilience(cities, mode, fracsCSV string, pairs int, seed int64, scale float64, csv, reliable bool, stdout, stderr io.Writer) int {
	_ = reliable
	fracs, ok := parseFracs(fracsCSV, stderr)
	if !ok {
		return 2
	}
	cfg := experiments.ResilienceConfig{
		Mode:  faults.Mode(mode),
		Fracs: fracs,
		Pairs: pairs,
		Seed:  seed,
		Scale: scale,
	}
	if cities != "" {
		cfg.Cities = strings.Split(cities, ",")
	}
	rows, err := experiments.Resilience(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "citymesh-sim:", err)
		return 1
	}
	if csv {
		fmt.Fprint(stdout, experiments.ResilienceCSV(rows))
	} else {
		fmt.Fprint(stdout, experiments.ResilienceText(rows))
	}
	return 0
}

// runSelfHealing executes the PR 3 evaluation: ladder-with-memory vs plain
// ladder, then partition-aware store-and-heal across a recovery.
func runSelfHealing(fs *flag.FlagSet, cities, mode, fracsCSV string, pairs int, seed int64, scale, healDecay, recoverAt float64, csv bool, stdout, stderr io.Writer) int {
	cfg := experiments.DefaultSelfHealingConfig()
	if cities != "" {
		cfg.City = strings.Split(cities, ",")[0]
	}
	if mode != "" {
		cfg.Mode = faults.Mode(mode)
	}
	// The sweep flag's default list starts at 0; only an explicit
	// -fail-frac overrides the self-healing default fraction.
	fracSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "fail-frac" {
			fracSet = true
		}
	})
	if fracSet {
		fracs, ok := parseFracs(fracsCSV, stderr)
		if !ok {
			return 2
		}
		if len(fracs) > 0 {
			cfg.Frac = fracs[0]
		}
	}
	cfg.Pairs = pairs
	cfg.Seed = seed
	cfg.Scale = scale
	cfg.RecoverAt = recoverAt
	if healDecay > 0 {
		hc := health.DefaultConfig()
		hc.DecayTau = healDecay
		cfg.Health = hc
	}
	res, err := experiments.SelfHealing(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "citymesh-sim:", err)
		return 1
	}
	if csv {
		fmt.Fprint(stdout, experiments.SelfHealingCSV(res))
	} else {
		fmt.Fprint(stdout, experiments.SelfHealingText(res))
	}
	return 0
}
