// Command citymesh-sim reproduces the paper's Figure 6: reachability,
// deliverability and transmission overhead for each (synthetic) city, using
// the full event-based simulation.
//
// Usage:
//
//	citymesh-sim [-cities boston,dc] [-reach-pairs 1000] [-deliver-pairs 50]
//	             [-seed 1] [-scale 1.0] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"citymesh/internal/experiments"
	"citymesh/internal/svgrender"
)

func main() {
	var (
		cities       = flag.String("cities", "", "comma-separated preset cities (default: all)")
		reachPairs   = flag.Int("reach-pairs", 1000, "random building pairs tested for reachability")
		deliverPairs = flag.Int("deliver-pairs", 50, "reachable pairs run through the event simulation")
		seed         = flag.Int64("seed", 1, "experiment seed")
		scale        = flag.Float64("scale", 1.0, "shrink city extents by this factor (0,1]")
		csv          = flag.Bool("csv", false, "emit CSV instead of a table")
		svg          = flag.String("svg", "", "also render the Figure 6 bar chart to this SVG file")
	)
	flag.Parse()

	cfg := experiments.Figure6Config{
		ReachPairs:   *reachPairs,
		DeliverPairs: *deliverPairs,
		Seed:         *seed,
		Scale:        *scale,
	}
	if *cities != "" {
		cfg.Cities = strings.Split(*cities, ",")
	}
	rows, err := experiments.Figure6(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "citymesh-sim:", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(experiments.Figure6CSV(rows))
	} else {
		fmt.Print(experiments.Figure6Text(rows))
	}
	if *svg != "" {
		groups := make([]svgrender.BarGroup, 0, len(rows))
		for _, r := range rows {
			groups = append(groups, svgrender.BarGroup{
				Label:  r.City,
				Values: []float64{r.Reachability, r.Deliverability},
			})
		}
		f, err := os.Create(*svg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "citymesh-sim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := svgrender.RenderGroupedBarChart(f,
			"Figure 6: reachability and deliverability per city",
			[]string{"reachability", "deliverability"}, groups, 1); err != nil {
			fmt.Fprintln(os.Stderr, "citymesh-sim:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", f.Name())
	}
}
