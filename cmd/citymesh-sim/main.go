// Command citymesh-sim reproduces the paper's Figure 6 — reachability,
// deliverability and transmission overhead for each (synthetic) city — and,
// with fault injection enabled, the disaster-scenario resilience sweep:
// delivery rate versus failure fraction for plain conduit routing and for
// the SendReliable escalation ladder (retry → widen → multipath → flood).
//
// Usage:
//
//	citymesh-sim [-cities boston,dc] [-reach-pairs 1000] [-deliver-pairs 50]
//	             [-seed 1] [-scale 1.0] [-csv]
//	citymesh-sim -fail-mode=uniform -fail-frac=0.1,0.3,0.5 -reliable
//	citymesh-sim -cities=boston -fail-mode=flood -fail-frac=0.3 -reliable
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"citymesh/internal/experiments"
	"citymesh/internal/faults"
	"citymesh/internal/svgrender"
)

func main() {
	var (
		cities       = flag.String("cities", "", "comma-separated preset cities (default: all)")
		reachPairs   = flag.Int("reach-pairs", 1000, "random building pairs tested for reachability")
		deliverPairs = flag.Int("deliver-pairs", 50, "reachable pairs run through the event simulation")
		seed         = flag.Int64("seed", 1, "experiment seed")
		scale        = flag.Float64("scale", 1.0, "shrink city extents by this factor (0,1]")
		csv          = flag.Bool("csv", false, "emit CSV instead of a table")
		svg          = flag.String("svg", "", "also render the Figure 6 bar chart to this SVG file")

		failMode = flag.String("fail-mode", "", "fault injector: "+strings.Join(faults.Modes(), ", ")+
			" (enables the resilience sweep)")
		failFrac = flag.String("fail-frac", "0,0.1,0.2,0.3,0.4,0.5",
			"comma-separated failure fractions to sweep")
		reliable = flag.Bool("reliable", false,
			"also run the SendReliable escalation ladder per pair (resilience sweep always reports both)")
		pairs = flag.Int("pairs", 30, "building pairs per resilience cell")
	)
	flag.Parse()

	if *failMode != "" && faults.Mode(*failMode) != faults.ModeNone {
		runResilience(*cities, *failMode, *failFrac, *pairs, *seed, *scale, *csv, *reliable)
		return
	}

	cfg := experiments.Figure6Config{
		ReachPairs:   *reachPairs,
		DeliverPairs: *deliverPairs,
		Seed:         *seed,
		Scale:        *scale,
	}
	if *cities != "" {
		cfg.Cities = strings.Split(*cities, ",")
	}
	rows, err := experiments.Figure6(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "citymesh-sim:", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(experiments.Figure6CSV(rows))
	} else {
		fmt.Print(experiments.Figure6Text(rows))
	}
	if *svg != "" {
		groups := make([]svgrender.BarGroup, 0, len(rows))
		for _, r := range rows {
			groups = append(groups, svgrender.BarGroup{
				Label:  r.City,
				Values: []float64{r.Reachability, r.Deliverability},
			})
		}
		f, err := os.Create(*svg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "citymesh-sim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := svgrender.RenderGroupedBarChart(f,
			"Figure 6: reachability and deliverability per city",
			[]string{"reachability", "deliverability"}, groups, 1); err != nil {
			fmt.Fprintln(os.Stderr, "citymesh-sim:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", f.Name())
	}
}

// runResilience executes the fault-injection sweep. The -reliable flag is
// accepted for CLI symmetry with the README examples; the sweep reports
// plain and ladder delivery side by side either way.
func runResilience(cities, mode, fracsCSV string, pairs int, seed int64, scale float64, csv, reliable bool) {
	_ = reliable
	var fracs []float64
	for _, s := range strings.Split(fracsCSV, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || f < 0 || f > 1 {
			fmt.Fprintf(os.Stderr, "citymesh-sim: bad -fail-frac value %q\n", s)
			os.Exit(2)
		}
		fracs = append(fracs, f)
	}
	cfg := experiments.ResilienceConfig{
		Mode:  faults.Mode(mode),
		Fracs: fracs,
		Pairs: pairs,
		Seed:  seed,
		Scale: scale,
	}
	if cities != "" {
		cfg.Cities = strings.Split(cities, ",")
	}
	rows, err := experiments.Resilience(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "citymesh-sim:", err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(experiments.ResilienceCSV(rows))
	} else {
		fmt.Print(experiments.ResilienceText(rows))
	}
}
