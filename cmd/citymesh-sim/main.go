// Command citymesh-sim reproduces the paper's Figure 6 — reachability,
// deliverability and transmission overhead for each (synthetic) city — and,
// with fault injection enabled, the disaster-scenario resilience sweep:
// delivery rate versus failure fraction for plain conduit routing and for
// the SendReliable escalation ladder (retry → widen → multipath → flood).
// The -heal flag runs the self-healing evaluation instead: the ladder with
// per-sender route-health memory against the plain ladder, plus the
// partition-aware store-and-heal phase across a recovery.
//
// Usage:
//
//	citymesh-sim [-cities boston,dc] [-reach-pairs 1000] [-deliver-pairs 50]
//	             [-seed 1] [-scale 1.0] [-csv] [-par 8]
//	citymesh-sim -fail-mode=uniform -fail-frac=0.1,0.3,0.5 -reliable
//	citymesh-sim -cities=boston -fail-mode=flood -fail-frac=0.3 -reliable
//	citymesh-sim -heal -fail-mode=disk -fail-frac=0.3 -heal-decay=30 -recover-at=60
//	citymesh-sim -fail-mode=uniform -fail-frac=0 -adversary=grayhole -adv-frac=0.2 -defend
//	citymesh-sim -experiment byzantine -cities gridtown -scale 0.5 -csv
//	citymesh-sim -list
//	citymesh-sim -experiment geocast -cities gridtown -scale 0.5 -csv
//	citymesh-sim -experiment federation -federation-cities 25 -federation-topology ring -link-fail-frac 0,0.3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"citymesh/internal/adversary"
	"citymesh/internal/experiments"
	"citymesh/internal/faults"
	"citymesh/internal/health"
	"citymesh/internal/sim"
	"citymesh/internal/svgrender"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam: flags parse from args,
// output goes to the writers, and the exit code is returned instead of
// calling os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("citymesh-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cities       = fs.String("cities", "", "comma-separated preset cities (default: all)")
		reachPairs   = fs.Int("reach-pairs", 1000, "random building pairs tested for reachability")
		deliverPairs = fs.Int("deliver-pairs", 50, "reachable pairs run through the event simulation")
		seed         = fs.Int64("seed", 1, "experiment seed")
		scale        = fs.Float64("scale", 1.0, "shrink city extents by this factor (0,1]")
		csv          = fs.Bool("csv", false, "emit CSV instead of a table")
		svg          = fs.String("svg", "", "also render the Figure 6 bar chart to this SVG file")

		failMode = fs.String("fail-mode", "", "fault injector: "+strings.Join(faults.Modes(), ", ")+
			" (enables the resilience sweep)")
		failFrac = fs.String("fail-frac", "0,0.1,0.2,0.3,0.4,0.5",
			"comma-separated failure fractions to sweep (the -heal run uses the first value)")
		reliable = fs.Bool("reliable", false,
			"also run the SendReliable escalation ladder per pair (resilience sweep always reports both)")
		pairs = fs.Int("pairs", 30, "building pairs per resilience cell")

		advBehavior = fs.String("adversary", "",
			"compromise a fraction of APs with this misbehavior during the resilience sweep: "+
				strings.Join(adversary.Names(), ", "))
		advFrac = fs.Float64("adv-frac", 0.2, "compromised-AP fraction for -adversary")
		defend  = fs.Bool("defend", false,
			"arm honest receivers with the default defense stack (max-TTL, tamper, rate, geocast checks)")

		heal = fs.Bool("heal", false,
			"run the self-healing evaluation: ladder+route-health memory vs plain ladder, then store-and-heal")
		healDecay = fs.Float64("heal-decay", 0,
			"suspicion decay e-folding time in sim seconds (0 = default)")
		recoverAt = fs.Float64("recover-at", 60,
			"sim instant at which injected failures heal during the -heal store-and-heal phase (0 disables)")

		fedCities = fs.Int("federation-cities", 0,
			"cap the federation experiment's size sweep at this many member cities (0 = sweep to 100)")
		fedTopo = fs.String("federation-topology", "",
			"federation link graph shape for -experiment federation: line, ring, hub, mesh")
		linkFail = fs.String("link-fail-frac", "",
			"comma-separated long-haul link failure fractions for -experiment federation")

		par = fs.Int("par", 0,
			"sweep worker parallelism (0 = GOMAXPROCS, 1 = serial); output is byte-identical either way")
		list       = fs.Bool("list", false, "list the registered experiments and exit")
		experiment = fs.String("experiment", "",
			"run one registered experiment by name (see -list) instead of the default Figure 6 table")

		txDelay = fs.Float64("tx-delay", 0, "override the simulator per-transmission latency in seconds")
		jitter  = fs.Float64("jitter-max", 0, "override the simulator max forwarding jitter in seconds")
		loss    = fs.Float64("loss", 0, "override the simulator per-reception loss probability [0,1]")
		maxEv   = fs.Int("max-events", 0, "override the simulator event cap (runaway guard)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, name := range experiments.Names() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}

	simCfg, ok := simOverride(fs, *txDelay, *jitter, *loss, *maxEv, stderr)
	if !ok {
		return 2
	}

	if *experiment != "" {
		return runRegistry(fs, *experiment, *cities, *scale, *seed, *pairs, *par,
			*fedCities, *fedTopo, *linkFail, *csv, stdout, stderr)
	}
	if *fedCities != 0 || *fedTopo != "" || *linkFail != "" {
		fmt.Fprintln(stderr, "citymesh-sim: -federation-cities/-federation-topology/-link-fail-frac "+
			"apply to -experiment federation")
		return 2
	}
	if *heal {
		return runSelfHealing(fs, *cities, *failMode, *failFrac, *pairs, *seed,
			*scale, *healDecay, *recoverAt, *par, *csv, stdout, stderr)
	}
	if *failMode != "" && faults.Mode(*failMode) != faults.ModeNone {
		return runResilience(*cities, *failMode, *failFrac, *pairs, *seed, *scale,
			*par, simCfg, *csv, *reliable, *advBehavior, *advFrac, *defend, stdout, stderr)
	}
	if *advBehavior != "" {
		fmt.Fprintln(stderr, "citymesh-sim: -adversary rides on the resilience sweep; add -fail-mode "+
			"(-fail-mode=uniform -fail-frac=0 gives an adversary-only run) or use -experiment byzantine")
		return 2
	}

	cfg := experiments.Figure6Config{
		ReachPairs:   *reachPairs,
		DeliverPairs: *deliverPairs,
		Seed:         *seed,
		Scale:        *scale,
		Parallelism:  *par,
		Sim:          simCfg,
	}
	if *cities != "" {
		cfg.Cities = strings.Split(*cities, ",")
	}
	rows, err := experiments.Figure6(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "citymesh-sim:", err)
		return 1
	}
	if *csv {
		fmt.Fprint(stdout, experiments.Figure6CSV(rows))
	} else {
		fmt.Fprint(stdout, experiments.Figure6Text(rows))
	}
	if *svg != "" {
		groups := make([]svgrender.BarGroup, 0, len(rows))
		for _, r := range rows {
			groups = append(groups, svgrender.BarGroup{
				Label:  r.City,
				Values: []float64{r.Reachability, r.Deliverability},
			})
		}
		f, err := os.Create(*svg)
		if err != nil {
			fmt.Fprintln(stderr, "citymesh-sim:", err)
			return 1
		}
		defer f.Close()
		if err := svgrender.RenderGroupedBarChart(f,
			"Figure 6: reachability and deliverability per city",
			[]string{"reachability", "deliverability"}, groups, 1); err != nil {
			fmt.Fprintln(stderr, "citymesh-sim:", err)
			return 1
		}
		fmt.Fprintln(stdout, "wrote", f.Name())
	}
	return 0
}

// simOverride builds a simulator-config override from the -tx-delay,
// -jitter-max, -loss and -max-events flags. It returns nil (use each
// experiment's default) unless at least one of them was set explicitly, so
// a zero flag value never clobbers a non-zero default. The override is
// validated here so a bad flag fails fast with the sentinel error instead
// of surfacing as an invalid simulation deep inside a sweep.
func simOverride(fs *flag.FlagSet, txDelay, jitter, loss float64, maxEv int, stderr io.Writer) (*sim.Config, bool) {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if !set["tx-delay"] && !set["jitter-max"] && !set["loss"] && !set["max-events"] {
		return nil, true
	}
	cfg := sim.DefaultConfig()
	if set["tx-delay"] {
		cfg.TxDelay = txDelay
	}
	if set["jitter-max"] {
		cfg.JitterMax = jitter
	}
	if set["loss"] {
		cfg.LossProb = loss
	}
	if set["max-events"] {
		cfg.MaxEvents = maxEv
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(stderr, "citymesh-sim:", err)
		return nil, false
	}
	return &cfg, true
}

// runRegistry executes one experiment from the unified registry. Only
// flags the user set explicitly override the experiment's own defaults.
func runRegistry(fs *flag.FlagSet, name, cities string, scale float64, seed int64, pairs, par, fedCities int, fedTopo, linkFail string, csv bool, stdout, stderr io.Writer) int {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	cfg := experiments.RunConfig{
		Seed:               seed,
		Scale:              scale,
		Parallelism:        par,
		FederationCities:   fedCities,
		FederationTopology: fedTopo,
	}
	if cities != "" {
		cfg.Cities = strings.Split(cities, ",")
		cfg.City = cfg.Cities[0]
	}
	if set["pairs"] {
		cfg.Pairs = pairs
	}
	if linkFail != "" {
		fracs, ok := parseFracs("-link-fail-frac", linkFail, stderr)
		if !ok {
			return 2
		}
		cfg.LinkFailFracs = fracs
	}
	res, err := experiments.RunByName(name, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "citymesh-sim:", err)
		return 1
	}
	if csv {
		fmt.Fprint(stdout, res.CSV())
	} else {
		fmt.Fprint(stdout, res.Text())
	}
	return 0
}

// parseFracs parses a comma-separated failure-fraction list.
func parseFracs(flagName, fracsCSV string, stderr io.Writer) ([]float64, bool) {
	var fracs []float64
	for _, s := range strings.Split(fracsCSV, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || f < 0 || f > 1 {
			fmt.Fprintf(stderr, "citymesh-sim: bad %s value %q\n", flagName, s)
			return nil, false
		}
		fracs = append(fracs, f)
	}
	return fracs, true
}

// runResilience executes the fault-injection sweep. The -reliable flag is
// accepted for CLI symmetry with the README examples; the sweep reports
// plain and ladder delivery side by side either way.
func runResilience(cities, mode, fracsCSV string, pairs int, seed int64, scale float64, par int, simCfg *sim.Config, csv, reliable bool, advBehavior string, advFrac float64, defend bool, stdout, stderr io.Writer) int {
	_ = reliable
	fracs, ok := parseFracs("-fail-frac", fracsCSV, stderr)
	if !ok {
		return 2
	}
	cfg := experiments.ResilienceConfig{
		Mode:        faults.Mode(mode),
		Fracs:       fracs,
		Pairs:       pairs,
		Seed:        seed,
		Scale:       scale,
		Parallelism: par,
		Sim:         simCfg,
		Adversary:   advBehavior,
		AdvFrac:     advFrac,
		Defend:      defend,
	}
	if cities != "" {
		cfg.Cities = strings.Split(cities, ",")
	}
	rows, err := experiments.Resilience(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "citymesh-sim:", err)
		return 1
	}
	if advBehavior != "" && !csv {
		def := "undefended"
		if defend {
			def = "defended"
		}
		fmt.Fprintf(stdout, "adversary: %s at %.0f%% of APs, %s receivers\n",
			advBehavior, 100*advFrac, def)
	}
	if csv {
		fmt.Fprint(stdout, experiments.ResilienceCSV(rows))
	} else {
		fmt.Fprint(stdout, experiments.ResilienceText(rows))
	}
	return 0
}

// runSelfHealing executes the PR 3 evaluation: ladder-with-memory vs plain
// ladder, then partition-aware store-and-heal across a recovery.
func runSelfHealing(fs *flag.FlagSet, cities, mode, fracsCSV string, pairs int, seed int64, scale, healDecay, recoverAt float64, par int, csv bool, stdout, stderr io.Writer) int {
	cfg := experiments.DefaultSelfHealingConfig()
	if cities != "" {
		cfg.City = strings.Split(cities, ",")[0]
	}
	if mode != "" {
		cfg.Mode = faults.Mode(mode)
	}
	// The sweep flag's default list starts at 0; only an explicit
	// -fail-frac overrides the self-healing default fraction.
	fracSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "fail-frac" {
			fracSet = true
		}
	})
	if fracSet {
		fracs, ok := parseFracs("-fail-frac", fracsCSV, stderr)
		if !ok {
			return 2
		}
		if len(fracs) > 0 {
			cfg.Frac = fracs[0]
		}
	}
	cfg.Pairs = pairs
	cfg.Seed = seed
	cfg.Scale = scale
	cfg.RecoverAt = recoverAt
	cfg.Parallelism = par
	if healDecay > 0 {
		hc := health.DefaultConfig()
		hc.DecayTau = healDecay
		cfg.Health = hc
	}
	res, err := experiments.SelfHealing(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "citymesh-sim:", err)
		return 1
	}
	if csv {
		fmt.Fprint(stdout, experiments.SelfHealingCSV(res))
	} else {
		fmt.Fprint(stdout, experiments.SelfHealingText(res))
	}
	return 0
}
