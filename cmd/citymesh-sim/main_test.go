package main

import (
	"bytes"
	"strings"
	"testing"
)

// runCmd invokes the command seam and returns (exit, stdout, stderr).
func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	code, _, stderr := runCmd(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no-such-flag") {
		t.Errorf("stderr should name the bad flag:\n%s", stderr)
	}
}

func TestRunRejectsBadFailFrac(t *testing.T) {
	code, _, stderr := runCmd(t, "-fail-mode=uniform", "-fail-frac=1.5")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "bad -fail-frac") {
		t.Errorf("stderr = %q", stderr)
	}
	if code, _, _ := runCmd(t, "-heal", "-fail-frac=nope"); code != 2 {
		t.Fatalf("heal with bad frac: exit = %d, want 2", code)
	}
}

func TestRunRejectsUnknownCity(t *testing.T) {
	code, _, stderr := runCmd(t, "-cities=atlantis", "-reach-pairs=10", "-deliver-pairs=2")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "atlantis") {
		t.Errorf("stderr = %q", stderr)
	}
	if code, _, _ := runCmd(t, "-heal", "-cities=atlantis"); code != 1 {
		t.Fatalf("heal with unknown city: exit = %d, want 1", code)
	}
}

func TestRunRejectsUnknownFaultMode(t *testing.T) {
	code, _, stderr := runCmd(t, "-fail-mode=earthquake", "-fail-frac=0.1")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "earthquake") {
		t.Errorf("stderr = %q", stderr)
	}
}

func TestRunFigure6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test is slow")
	}
	code, stdout, stderr := runCmd(t,
		"-cities=gridtown", "-scale=0.3", "-reach-pairs=50", "-deliver-pairs=5")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "gridtown") {
		t.Errorf("figure 6 table missing the city:\n%s", stdout)
	}
}

func TestRunResilienceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test is slow")
	}
	code, stdout, stderr := runCmd(t,
		"-cities=gridtown", "-scale=0.3", "-fail-mode=uniform", "-fail-frac=0.3",
		"-pairs=5", "-reliable")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "uniform") || !strings.Contains(stdout, "gridtown") {
		t.Errorf("resilience table malformed:\n%s", stdout)
	}
}

func TestRunHealSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test is slow")
	}
	code, stdout, stderr := runCmd(t,
		"-heal", "-cities=gridtown", "-scale=0.3", "-fail-mode=disk",
		"-fail-frac=0.3", "-pairs=8", "-heal-decay=45", "-recover-at=60")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"ladder+health", "store-and-heal"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("heal report missing %q:\n%s", want, stdout)
		}
	}
}

func TestRunList(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"figure6", "resilience", "geocast", "headers"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-list output missing %q:\n%s", want, stdout)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	code, _, stderr := runCmd(t, "-experiment=bogus")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "bogus") {
		t.Errorf("stderr should name the unknown experiment:\n%s", stderr)
	}
}

func TestRunRejectsInvalidSimOverride(t *testing.T) {
	code, _, stderr := runCmd(t, "-loss=1.5")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "LossProb") {
		t.Errorf("stderr should name the invalid knob:\n%s", stderr)
	}
	if code, _, _ := runCmd(t, "-tx-delay=-1"); code != 2 {
		t.Fatalf("negative tx-delay: exit = %d, want 2", code)
	}
	if code, _, _ := runCmd(t, "-max-events=-5"); code != 2 {
		t.Fatalf("negative max-events: exit = %d, want 2", code)
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test is slow")
	}
	code, stdout, stderr := runCmd(t,
		"-experiment=headers", "-cities=gridtown", "-scale=0.4", "-pairs=10", "-par=4", "-csv")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.HasPrefix(stdout, "city,") {
		t.Errorf("experiment CSV malformed:\n%s", stdout)
	}
}

func TestRunSimOverrideAppliesToFigure6(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test is slow")
	}
	base := []string{"-cities=gridtown", "-scale=0.3", "-reach-pairs=50", "-deliver-pairs=5", "-csv"}
	code, clean, stderr := runCmd(t, base...)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	// An explicit zero override must really reach the simulator: dropping
	// jitter to 0 changes broadcast interleaving and thus the overhead
	// column, while an untouched -loss default must leave output alone.
	code, overridden, stderr := runCmd(t, append([]string{"-jitter-max=0"}, base...)...)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if clean == "" || overridden == "" {
		t.Fatal("empty CSV output")
	}
	code, same, stderr := runCmd(t, base...)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if same != clean {
		t.Errorf("identical invocations diverged:\n%s\nvs\n%s", clean, same)
	}
}

func TestRunHealCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test is slow")
	}
	code, stdout, stderr := runCmd(t,
		"-heal", "-cities=gridtown", "-scale=0.3", "-pairs=5", "-csv")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "city,mode,fail_frac") {
		t.Errorf("csv output malformed:\n%s", stdout)
	}
}

func TestRunFederationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test is slow")
	}
	code, stdout, stderr := runCmd(t,
		"-experiment=federation", "-federation-cities=3", "-federation-topology=ring",
		"-link-fail-frac=0", "-pairs=2", "-par=2", "-csv")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.HasPrefix(stdout, "cities,topology,") {
		t.Errorf("federation CSV malformed:\n%s", stdout)
	}
	if !strings.Contains(stdout, "ring") {
		t.Errorf("topology flag ignored:\n%s", stdout)
	}
}

func TestRunFederationFlagsRequireExperiment(t *testing.T) {
	code, _, stderr := runCmd(t, "-federation-cities=5")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "federation") {
		t.Errorf("stderr should explain the flag scope:\n%s", stderr)
	}
}

func TestRunFederationRejectsBadLinkFailFrac(t *testing.T) {
	code, _, stderr := runCmd(t, "-experiment=federation", "-link-fail-frac=2.0")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "link-fail-frac") {
		t.Errorf("stderr should name the bad flag:\n%s", stderr)
	}
}
