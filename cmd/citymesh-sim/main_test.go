package main

import (
	"bytes"
	"strings"
	"testing"
)

// runCmd invokes the command seam and returns (exit, stdout, stderr).
func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	code, _, stderr := runCmd(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no-such-flag") {
		t.Errorf("stderr should name the bad flag:\n%s", stderr)
	}
}

func TestRunRejectsBadFailFrac(t *testing.T) {
	code, _, stderr := runCmd(t, "-fail-mode=uniform", "-fail-frac=1.5")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "bad -fail-frac") {
		t.Errorf("stderr = %q", stderr)
	}
	if code, _, _ := runCmd(t, "-heal", "-fail-frac=nope"); code != 2 {
		t.Fatalf("heal with bad frac: exit = %d, want 2", code)
	}
}

func TestRunRejectsUnknownCity(t *testing.T) {
	code, _, stderr := runCmd(t, "-cities=atlantis", "-reach-pairs=10", "-deliver-pairs=2")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "atlantis") {
		t.Errorf("stderr = %q", stderr)
	}
	if code, _, _ := runCmd(t, "-heal", "-cities=atlantis"); code != 1 {
		t.Fatalf("heal with unknown city: exit = %d, want 1", code)
	}
}

func TestRunRejectsUnknownFaultMode(t *testing.T) {
	code, _, stderr := runCmd(t, "-fail-mode=earthquake", "-fail-frac=0.1")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "earthquake") {
		t.Errorf("stderr = %q", stderr)
	}
}

func TestRunFigure6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test is slow")
	}
	code, stdout, stderr := runCmd(t,
		"-cities=gridtown", "-scale=0.3", "-reach-pairs=50", "-deliver-pairs=5")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "gridtown") {
		t.Errorf("figure 6 table missing the city:\n%s", stdout)
	}
}

func TestRunResilienceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test is slow")
	}
	code, stdout, stderr := runCmd(t,
		"-cities=gridtown", "-scale=0.3", "-fail-mode=uniform", "-fail-frac=0.3",
		"-pairs=5", "-reliable")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "uniform") || !strings.Contains(stdout, "gridtown") {
		t.Errorf("resilience table malformed:\n%s", stdout)
	}
}

func TestRunHealSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test is slow")
	}
	code, stdout, stderr := runCmd(t,
		"-heal", "-cities=gridtown", "-scale=0.3", "-fail-mode=disk",
		"-fail-frac=0.3", "-pairs=8", "-heal-decay=45", "-recover-at=60")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"ladder+health", "store-and-heal"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("heal report missing %q:\n%s", want, stdout)
		}
	}
}

func TestRunHealCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test is slow")
	}
	code, stdout, stderr := runCmd(t,
		"-heal", "-cities=gridtown", "-scale=0.3", "-pairs=5", "-csv")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "city,mode,fail_frac") {
		t.Errorf("csv output malformed:\n%s", stdout)
	}
}
