// Command citymesh-agent runs one AP software agent over UDP — the unit of
// the paper's proposed real-world deployment (§3: "APs running a small
// software agent"; §6: a to-scale testbed). Each agent loads the city map,
// listens on a UDP socket, and forwards CityMesh frames according to the
// conduit rule. Radio adjacency is configured explicitly with -neighbors,
// standing in for physical proximity.
//
// A small testbed is three shells:
//
//	citygen -preset boston -o boston.osm
//	citymesh-agent -city boston.osm -listen 127.0.0.1:7001 -building 12
//	citymesh-agent -city boston.osm -listen 127.0.0.1:7002 -building 57 \
//	    -neighbors 127.0.0.1:7001
//
// and a sender injecting via -send (see examples/udp-testbed for a fully
// scripted version).
//
// Operations:
//
//   - -state-dir makes postboxes crash-safe: held messages are persisted
//     to an append-only log and survive an AP reboot.
//   - SIGTERM/SIGINT drain gracefully: beacons stop, the socket closes,
//     postbox state is synced to disk, a final status dump prints, exit 0.
//   - SIGUSR1 prints a status dump (per-cause drop counters, live neighbor
//     table, transport watchdog health, postbox totals) without stopping
//     the agent.
//   - -hello controls the liveness beacon period; -neighbor-rate and
//     -inbound-budget bound what a hostile or faulty peer can make this
//     agent do.
//   - -session-listen opens a second UDP socket speaking the user-session
//     protocol (internal/session): phones attach, submit under token-bucket
//     and proof-of-work admission, and fetch from the AP's postbox store.
//     A drain loop forwards queued messages onto the mesh at -session-drain
//     messages per second.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"citymesh/internal/agent"
	"citymesh/internal/core"
	"citymesh/internal/geo"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
	"citymesh/internal/postbox"
	"citymesh/internal/session"
)

func main() {
	var (
		cityFile  = flag.String("city", "", "OSM XML city map (required)")
		listen    = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		buildingF = flag.Int("building", -1, "dense building index hosting this AP (-1: relay)")
		neighbors = flag.String("neighbors", "", "comma-separated neighbor UDP addresses")
		send      = flag.String("send", "", "inject a message: dstBuilding:text (requires -building)")
		stats     = flag.Duration("stats", 10*time.Second, "stats print interval (0: off)")
		stateDir  = flag.String("state-dir", "", "directory for crash-safe postbox persistence (empty: in-memory)")
		hello     = flag.Duration("hello", agent.DefaultBeaconInterval, "HELLO liveness beacon interval (0: off)")
		nbrRate   = flag.Float64("neighbor-rate", agent.DefaultNeighborRate, "per-neighbor inbound frames/sec (negative: unlimited)")
		budget    = flag.Float64("inbound-budget", 4<<20, "global inbound byte budget, bytes/sec (0: unlimited)")
		cacheCap  = flag.Int("conduit-cache", 0, "conduit-region cache capacity in messages (0: default, negative: disable)")
		maxTTL    = flag.Int("max-ttl", 0, "reject frames whose received TTL exceeds this (0: off); set to the network TTL to stop TTL-reset attacks")
		strictSan = flag.Bool("strict-sanity", false, "reject frames with conduit waypoints unmappable on this AP's map (corrupt route bytes)")

		sessListen = flag.String("session-listen", "", "UDP address for the user-session protocol (empty: disabled; requires -building)")
		sessDrain  = flag.Int("session-drain", 4, "session queue drain rate, messages/sec")
	)
	flag.Parse()

	if *cityFile == "" {
		fail(fmt.Errorf("-city is required"))
	}

	// Validate operator input before any heavy lifting, so a typo in
	// -neighbors or -send fails in milliseconds with every bad address
	// listed, instead of after the map parse.
	neighborAddrs, err := parseNeighbors(*neighbors)
	if err != nil {
		fail(err)
	}
	var sendDst int
	var sendText string
	if *send != "" {
		if *buildingF < 0 {
			fail(fmt.Errorf("-send requires -building"))
		}
		parts := strings.SplitN(*send, ":", 2)
		if len(parts) != 2 {
			fail(fmt.Errorf("-send wants dstBuilding:text"))
		}
		if _, err := fmt.Sscanf(parts[0], "%d", &sendDst); err != nil || sendDst < 0 {
			fail(fmt.Errorf("bad destination %q", parts[0]))
		}
		sendText = parts[1]
		if len(neighborAddrs) == 0 && sendDst != *buildingF {
			fail(fmt.Errorf("-send to building %d needs -neighbors; the message cannot leave this AP", sendDst))
		}
	}

	f, err := os.Open(*cityFile)
	if err != nil {
		fail(err)
	}
	netw, err := core.FromOSM(f, *cityFile, core.DefaultConfig())
	f.Close()
	if err != nil {
		fail(err)
	}
	city := netw.City

	// Crash-safe postbox store: with -state-dir, messages held for local
	// postboxes survive a reboot — the defining event of a disaster.
	var store *postbox.Store
	if *stateDir != "" {
		store, err = postbox.OpenDir(*stateDir)
		if err != nil {
			fail(fmt.Errorf("state-dir: %w", err))
		}
		boxes, msgs := store.Totals()
		fmt.Printf("citymesh-agent: restored %d messages in %d postboxes from %s\n",
			msgs, boxes, *stateDir)
	}

	pos := cityPos(city, *buildingF)
	a := agent.New(agent.Config{
		ID:                 0,
		Pos:                pos,
		Building:           *buildingF,
		City:               city,
		Store:              store,
		NeighborRate:       *nbrRate,
		InboundBytesPerSec: *budget,
		ConduitCacheCap:    *cacheCap,
		MaxTTL:             clampTTL(*maxTTL),
		StrictSanity:       *strictSan,
	}, nil)
	a.OnDeliver(func(p *packet.Packet) {
		fmt.Printf("DELIVERED msg=%016x from building %d: %q\n",
			p.Header.MsgID, p.Header.Src(), p.Payload)
	})
	tr, err := agent.NewUDPTransport(*listen, a.HandleFrameFrom)
	if err != nil {
		fail(err)
	}
	a.Attach(tr)
	fmt.Printf("citymesh-agent: listening on %s (building %d, pos %v)\n", tr.Addr(), *buildingF, pos)

	if len(neighborAddrs) > 0 {
		tr.SetNeighbors(neighborAddrs)
	}
	if *hello > 0 {
		a.StartBeacons(*hello)
	}

	start := time.Now()

	// User-session endpoint: a second socket for phones on this AP's
	// Wi-Fi, sharing the agent's postbox store so packet-path deliveries
	// and session fetches see the same boxes.
	var svc *session.Service
	var sessConn net.PacketConn
	sessStop := make(chan struct{})
	if *sessListen != "" {
		if *buildingF < 0 {
			fail(fmt.Errorf("-session-listen requires -building"))
		}
		svc = session.New(session.Config{Building: *buildingF, Store: a.Store()})
		sessConn, err = net.ListenPacket("udp", *sessListen)
		if err != nil {
			fail(fmt.Errorf("session-listen: %w", err))
		}
		fmt.Printf("citymesh-agent: session endpoint on %s (drain %d msg/s)\n",
			sessConn.LocalAddr(), *sessDrain)
		go sessionLoop(sessConn, svc, start)
		go sessionDrain(svc, &liveForwarder{netw: netw, a: a, src: *buildingF}, *sessDrain, start, sessStop)
	}
	if *send != "" {
		// Any failure along the send path — planning, encoding, or the
		// socket writes — is a hard error with a non-zero exit, never a
		// silent continue.
		route, err := netw.PlanRoute(*buildingF, sendDst)
		if err != nil {
			fail(fmt.Errorf("send: plan route: %w", err))
		}
		pkt, err := netw.NewPacket(route, []byte(sendText))
		if err != nil {
			fail(fmt.Errorf("send: encode: %w", err))
		}
		if err := a.Inject(pkt); err != nil {
			fail(fmt.Errorf("send: %w", err))
		}
		fmt.Printf("injected msg=%016x to building %d via %d waypoints\n",
			pkt.Header.MsgID, sendDst, len(route.Waypoints))
	}

	// Staleness window for the periodic neighbor count: three missed
	// beacons means the neighbor is gone.
	liveWindow := 3 * *hello
	if liveWindow <= 0 {
		liveWindow = 3 * agent.DefaultBeaconInterval
	}

	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGINT, syscall.SIGTERM)
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	var tick <-chan time.Time
	if *stats > 0 {
		t := time.NewTicker(*stats)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-term:
			// Graceful drain: stop beaconing and receiving, then make
			// postbox state durable before exiting.
			if sessConn != nil {
				close(sessStop)
				sessConn.Close()
			}
			if err := a.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "citymesh-agent: close:", err)
			}
			if store != nil {
				if err := store.Sync(); err != nil {
					fmt.Fprintln(os.Stderr, "citymesh-agent: state sync:", err)
				}
			}
			dumpStatus(a, tr, store, svc, start)
			if store != nil {
				if err := store.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "citymesh-agent: state close:", err)
				}
			}
			fmt.Println("citymesh-agent: drained, exiting")
			return
		case <-usr1:
			dumpStatus(a, tr, store, svc, start)
		case <-tick:
			st := a.Stats()
			fmt.Printf("stats: rx=%d dup=%d fwd=%d stored=%d dropped=%d (malformed=%d oversized=%d ratelimited=%d) neighbors=%d\n",
				st.Received, st.Duplicates, st.Rebroadcast, st.Stored, st.Dropped,
				st.DroppedMalformed, st.DroppedOversized, st.DroppedRateLimited,
				len(a.NeighborsSince(liveWindow)))
		}
	}
}

// parseNeighbors validates every address up front and reports all failures
// at once, so the operator fixes the whole flag in one round trip.
func parseNeighbors(s string) ([]*net.UDPAddr, error) {
	if s == "" {
		return nil, nil
	}
	var addrs []*net.UDPAddr
	var bad []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			bad = append(bad, "(empty entry)")
			continue
		}
		ua, err := net.ResolveUDPAddr("udp", part)
		if err != nil {
			bad = append(bad, fmt.Sprintf("%s (%v)", part, err))
			continue
		}
		if ua.Port == 0 {
			bad = append(bad, fmt.Sprintf("%s (port 0 is not routable)", part))
			continue
		}
		addrs = append(addrs, ua)
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("bad -neighbors: %s", strings.Join(bad, "; "))
	}
	return addrs, nil
}

// clampTTL folds the -max-ttl flag into the header TTL range.
func clampTTL(v int) uint8 {
	if v <= 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// dumpStatus prints the full operational picture (SIGUSR1 and final drain).
func dumpStatus(a *agent.Agent, tr *agent.UDPTransport, store *postbox.Store, svc *session.Service, start time.Time) {
	st := a.Stats()
	fmt.Printf("--- status (uptime %v) ---\n", time.Since(start).Round(time.Second))
	fmt.Printf("frames: received=%d duplicates=%d rebroadcast=%d out-of-conduit=%d stored=%d\n",
		st.Received, st.Duplicates, st.Rebroadcast, st.OutOfConduit, st.Stored)
	fmt.Printf("drops:  total=%d malformed=%d oversized=%d rate-limited=%d replayed=%d tampered=%d panics-recovered=%d\n",
		st.Dropped, st.DroppedMalformed, st.DroppedOversized, st.DroppedRateLimited,
		st.DroppedReplayed, st.DroppedTampered, st.PanicsRecovered)
	d := st.Decisions
	fmt.Printf("kernel: first-hop=%d in-conduit=%d out-of-conduit=%d geocast=%d ttl-expired=%d bad-route=%d ttl-inflated=%d bad-conduit=%d\n",
		d.FirstHop, d.InConduit, d.OutOfConduit, d.Geocast, d.TTLExpired, d.BadRoute,
		d.TTLInflated, d.BadConduit)
	restarts, panics := tr.Health()
	fmt.Printf("transport: addr=%s watchdog-restarts=%d handler-panics=%d\n", tr.Addr(), restarts, panics)
	fmt.Printf("liveness: hellos-sent=%d hellos-received=%d known-neighbors=%d\n",
		st.HellosSent, st.HellosReceived, len(st.Neighbors))
	keys := make([]string, 0, len(st.Neighbors))
	for k := range st.Neighbors {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  neighbor %s last-seen %v ago\n", k, time.Since(st.Neighbors[k]).Round(time.Second))
	}
	if store != nil {
		boxes, msgs := store.Totals()
		fmt.Printf("postbox: dir=%s boxes=%d messages=%d log-bytes=%d\n",
			store.Dir(), boxes, msgs, store.LogBytes())
	}
	if svc != nil {
		ss := svc.Stats()
		fmt.Printf("session: offered=%d accepted=%d delivered=%d queued=%d fetched=%d acked=%d\n",
			ss.Offered, ss.Accepted, ss.Delivered, ss.Queued, ss.Fetched, ss.Acked)
		fmt.Printf("session-rejects: admission=%d rate-limit=%d buffer-full=%d network-exhausted=%d malformed=%d\n",
			ss.RejectedAdmission, ss.RejectedRateLimit, ss.RejectedBufferFull,
			ss.DroppedNetworkExhausted, ss.Malformed)
	}
	fmt.Println("--- end status ---")
}

// sessionLoop serves the user-session protocol on a dedicated socket:
// one datagram in, one reply datagram out. All admission decisions live in
// the Service; this loop only moves bytes. It exits when the socket is
// closed during graceful drain.
func sessionLoop(conn net.PacketConn, svc *session.Service, start time.Time) {
	buf := make([]byte, session.MaxSessionFrame+1)
	for {
		n, from, err := conn.ReadFrom(buf)
		if err != nil {
			return // socket closed: drain in progress
		}
		reply := svc.Handle(buf[:n], time.Since(start).Seconds())
		if reply != nil {
			conn.WriteTo(reply, from)
		}
	}
}

// sessionDrain forwards queued session messages onto the mesh at a bounded
// rate — the knob that keeps a flash crowd from monopolizing the radio.
func sessionDrain(svc *session.Service, fwd session.Forwarder, perSec int, start time.Time, stop <-chan struct{}) {
	if perSec <= 0 {
		perSec = 1
	}
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			svc.Drain(time.Since(start).Seconds(), perSec, fwd)
		}
	}
}

// liveForwarder carries drained session messages onto the live mesh: plan
// a conduit route, stamp the postbox address, and inject as if locally
// sent. The live path is fire-and-forget — UDP transmission is
// asynchronous, so Delivered reports that the message was handed to the
// mesh, and the recipient's fetch/ack loop is the real acknowledgment.
type liveForwarder struct {
	netw *core.Network
	a    *agent.Agent
	src  int
}

func (f *liveForwarder) Forward(m *session.Pending, now float64) session.Outcome {
	route, err := f.netw.PlanRoute(f.src, m.Dst)
	if err != nil {
		return session.Outcome{}
	}
	pkt, err := f.netw.NewPacket(route, m.Payload)
	if err != nil {
		return session.Outcome{}
	}
	pkt.Header.Flags |= packet.FlagPostbox
	pkt.Header.Postbox = m.To
	if err := f.a.Inject(pkt); err != nil {
		return session.Outcome{}
	}
	return session.Outcome{Delivered: true, Broadcasts: 1}
}

// cityPos picks the agent's position: the building centroid, or the map
// center for relays.
func cityPos(city *osm.City, building int) geo.Point {
	if building >= 0 && building < city.NumBuildings() {
		return city.Buildings[building].Centroid
	}
	return city.Bounds.Center()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "citymesh-agent:", err)
	os.Exit(1)
}
