// Command citymesh-agent runs one AP software agent over UDP — the unit of
// the paper's proposed real-world deployment (§3: "APs running a small
// software agent"; §6: a to-scale testbed). Each agent loads the city map,
// listens on a UDP socket, and forwards CityMesh frames according to the
// conduit rule. Radio adjacency is configured explicitly with -neighbors,
// standing in for physical proximity.
//
// A small testbed is three shells:
//
//	citygen -preset boston -o boston.osm
//	citymesh-agent -city boston.osm -listen 127.0.0.1:7001 -building 12
//	citymesh-agent -city boston.osm -listen 127.0.0.1:7002 -building 57 \
//	    -neighbors 127.0.0.1:7001
//
// and a sender injecting via -send (see examples/udp-testbed for a fully
// scripted version).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"citymesh/internal/agent"
	"citymesh/internal/core"
	"citymesh/internal/geo"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
)

func main() {
	var (
		cityFile  = flag.String("city", "", "OSM XML city map (required)")
		listen    = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		buildingF = flag.Int("building", -1, "dense building index hosting this AP (-1: relay)")
		neighbors = flag.String("neighbors", "", "comma-separated neighbor UDP addresses")
		send      = flag.String("send", "", "inject a message: dstBuilding:text (requires -building)")
		stats     = flag.Duration("stats", 10*time.Second, "stats print interval (0: off)")
	)
	flag.Parse()

	if *cityFile == "" {
		fail(fmt.Errorf("-city is required"))
	}
	f, err := os.Open(*cityFile)
	if err != nil {
		fail(err)
	}
	netw, err := core.FromOSM(f, *cityFile, core.DefaultConfig())
	f.Close()
	if err != nil {
		fail(err)
	}
	city := netw.City

	pos := cityPos(city, *buildingF)
	a := agent.New(agent.Config{ID: 0, Pos: pos, Building: *buildingF, City: city}, nil)
	a.OnDeliver(func(p *packet.Packet) {
		fmt.Printf("DELIVERED msg=%016x from building %d: %q\n",
			p.Header.MsgID, p.Header.Src(), p.Payload)
	})
	tr, err := agent.NewUDPTransport(*listen, a.HandleFrame)
	if err != nil {
		fail(err)
	}
	a.Attach(tr)
	defer a.Close()
	fmt.Printf("citymesh-agent: listening on %s (building %d, pos %v)\n", tr.Addr(), *buildingF, pos)

	if *neighbors != "" {
		var addrs []*net.UDPAddr
		for _, s := range strings.Split(*neighbors, ",") {
			ua, err := net.ResolveUDPAddr("udp", strings.TrimSpace(s))
			if err != nil {
				fail(fmt.Errorf("neighbor %q: %w", s, err))
			}
			addrs = append(addrs, ua)
		}
		tr.SetNeighbors(addrs)
	}

	if *send != "" {
		if *buildingF < 0 {
			fail(fmt.Errorf("-send requires -building"))
		}
		parts := strings.SplitN(*send, ":", 2)
		if len(parts) != 2 {
			fail(fmt.Errorf("-send wants dstBuilding:text"))
		}
		var dst int
		if _, err := fmt.Sscanf(parts[0], "%d", &dst); err != nil {
			fail(fmt.Errorf("bad destination %q", parts[0]))
		}
		route, err := netw.PlanRoute(*buildingF, dst)
		if err != nil {
			fail(err)
		}
		pkt, err := netw.NewPacket(route, []byte(parts[1]))
		if err != nil {
			fail(err)
		}
		if err := a.Inject(pkt); err != nil {
			fail(err)
		}
		fmt.Printf("injected msg=%016x to building %d via %d waypoints\n",
			pkt.Header.MsgID, dst, len(route.Waypoints))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	var tick <-chan time.Time
	if *stats > 0 {
		t := time.NewTicker(*stats)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-sig:
			st := a.Stats()
			fmt.Printf("final stats: %+v\n", st)
			return
		case <-tick:
			st := a.Stats()
			fmt.Printf("stats: %+v\n", st)
		}
	}
}

// cityPos picks the agent's position: the building centroid, or the map
// center for relays.
func cityPos(city *osm.City, building int) geo.Point {
	if building >= 0 && building < city.NumBuildings() {
		return city.Buildings[building].Centroid
	}
	return city.Bounds.Center()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "citymesh-agent:", err)
	os.Exit(1)
}
