// Command citymesh-render reproduces the paper's map figures as SVG:
// Figure 5 (building footprints and the AP graph) and Figure 7 (a single
// simulation with the building route, the conduit, forwarding APs in light
// blue and receive-only APs in red).
//
// Usage:
//
//	citymesh-render -fig 5 -city boston -out ./figs
//	citymesh-render -fig 7 -city boston -seed 3 -out ./figs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"citymesh/internal/experiments"
)

func main() {
	var (
		fig   = flag.Int("fig", 5, "figure to render: 5 or 7")
		city  = flag.String("city", "boston", "preset city")
		out   = flag.String("out", ".", "output directory")
		scale = flag.Float64("scale", 1.0, "shrink city extents by this factor (0,1]")
		seed  = flag.Int64("seed", 3, "simulation seed (figure 7)")
		par   = flag.Int("par", 0, "worker parallelism (0 = GOMAXPROCS, 1 = serial); output is identical either way")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	switch *fig {
	case 5:
		fa, err := os.Create(filepath.Join(*out, fmt.Sprintf("fig5a_%s_footprints.svg", *city)))
		if err != nil {
			fail(err)
		}
		defer fa.Close()
		fb, err := os.Create(filepath.Join(*out, fmt.Sprintf("fig5b_%s_mesh.svg", *city)))
		if err != nil {
			fail(err)
		}
		defer fb.Close()
		if err := experiments.Figure5(*city, *scale, fa, fb); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s and %s\n", fa.Name(), fb.Name())
	case 7:
		f, err := os.Create(filepath.Join(*out, fmt.Sprintf("fig7_%s_simulation.svg", *city)))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		res, err := experiments.Figure7(*city, *scale, *seed, *par, f)
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (src=%d dst=%d delivered=%v forwardingAPs=%d receiveOnlyAPs=%d broadcasts=%d)\n",
			f.Name(), res.Src, res.Dst, res.Delivered, res.Forwarded, res.ReceivedOnly, res.Broadcasts)
	default:
		fail(fmt.Errorf("unknown figure %d (want 5 or 7)", *fig))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "citymesh-render:", err)
	os.Exit(1)
}
