// Quickstart: build a synthetic city, plan a building route, and deliver a
// message through the simulated AP mesh with the CityMesh conduit policy —
// then deliver it again with the resilient escalation ladder, all through
// the root package facade.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"citymesh"
	"citymesh/internal/runner"
)

func main() {
	// Build a CityMesh deployment over the "boston" preset with the
	// paper's parameters: 50 m transmission range, 1 AP per 200 m² of
	// building footprint, conduit width 50 m, cubed-distance edge weights.
	net, err := citymesh.FromPreset("boston", citymesh.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d buildings, %d APs, %d building-graph edges\n",
		net.City.NumBuildings(), net.Mesh.NumAPs(), net.Graph.NumEdges())

	// Collect reachable candidate pairs. Deliverability is high but not
	// total (see EXPERIMENTS.md): some conduits have a choke point where
	// the realized AP placement leaves a >range gap inside the band.
	pairs, err := net.RandomPairs(42, 500)
	if err != nil {
		log.Fatal(err)
	}
	var reachable [][2]int
	for _, p := range pairs {
		if net.Reachable(p[0], p[1]) {
			reachable = append(reachable, p)
		}
		if len(reachable) == 32 {
			break
		}
	}
	if len(reachable) == 0 {
		log.Fatal("no reachable pair; try a different seed")
	}

	// Probe the candidates concurrently — sim.Run is safe to call from
	// many goroutines against one Network — and keep the lowest-indexed
	// delivery, so the answer is identical to probing them one by one.
	type probe struct {
		res citymesh.SendResult
		err error
	}
	probes := runner.Map(0, len(reachable), func(i int) probe {
		var pr probe
		pr.res, pr.err = net.Send(reachable[i][0], reachable[i][1],
			[]byte("are you safe? reply via my postbox"), citymesh.DefaultSimConfig())
		return pr
	})
	var res citymesh.SendResult
	var src, dst, attempts int
	for i, pr := range probes {
		if pr.err != nil {
			continue
		}
		attempts++
		if pr.res.Sim.Delivered {
			res, src, dst = pr.res, reachable[i][0], reachable[i][1]
			break
		}
	}
	if !res.Sim.Delivered {
		log.Fatal("no pair delivered; try a different seed")
	}

	path, _ := net.BuildingPath(src, dst)
	fmt.Printf("route %d -> %d (attempt %d): %d buildings compressed to %d waypoints\n",
		src, dst, attempts, len(path), len(res.Route.Waypoints))
	fmt.Printf("header: %d bits (compressed route: %d bits)\n",
		res.Packet.Header.HeaderBits(), res.Packet.Header.RouteBits())
	fmt.Printf("delivered: %v in %.0f ms after %d broadcasts",
		res.Sim.Delivered, res.Sim.DeliveryTime*1000, res.Sim.Broadcasts)
	if res.IdealTransmissions > 0 {
		fmt.Printf(" (overhead %.1fx vs ideal %d unicasts)", res.Overhead(), res.IdealTransmissions)
	}
	fmt.Println()

	// Disasters are exactly when a single attempt is not good enough:
	// SendReliable escalates retry → widened conduit → multipath → scoped
	// flood, and a HealthMap lets later sends plan around learned damage.
	rc := citymesh.DefaultReliableConfig()
	rc.Seed = 42
	rc.Health = citymesh.NewHealthMap(citymesh.DefaultHealthConfig())
	rel, err := net.SendReliable(src, dst, []byte("second copy, via the ladder"),
		citymesh.DefaultSimConfig(), rc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resilient: delivered=%v on rung %v after %d attempt(s), %d total broadcasts\n",
		rel.Delivered, rel.Rung, len(rel.Attempts), rel.TotalBroadcasts)
}
