// Quickstart: build a synthetic city, plan a building route, and deliver a
// message through the simulated AP mesh with the CityMesh conduit policy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"citymesh"
)

func main() {
	// Build a CityMesh deployment over the "boston" preset with the
	// paper's parameters: 50 m transmission range, 1 AP per 200 m² of
	// building footprint, conduit width 50 m, cubed-distance edge weights.
	net, err := citymesh.FromPreset("boston", citymesh.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d buildings, %d APs, %d building-graph edges\n",
		net.City.NumBuildings(), net.Mesh.NumAPs(), net.Graph.NumEdges())

	// Try reachable pairs until one delivers. Deliverability is high but
	// not total (see EXPERIMENTS.md): some conduits have a choke point
	// where the realized AP placement leaves a >range gap inside the band.
	var res citymesh.SendResult
	var src, dst, attempts int
	pairs, err := net.RandomPairs(42, 500)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		if !net.Reachable(p[0], p[1]) {
			continue
		}
		r, err := net.Send(p[0], p[1], []byte("are you safe? reply via my postbox"), citymesh.DefaultSimConfig())
		if err != nil {
			continue
		}
		attempts++
		if r.Sim.Delivered {
			res, src, dst = r, p[0], p[1]
			break
		}
	}
	if !res.Sim.Delivered {
		log.Fatal("no pair delivered; try a different seed")
	}

	path, _ := net.BuildingPath(src, dst)
	fmt.Printf("route %d -> %d (attempt %d): %d buildings compressed to %d waypoints\n",
		src, dst, attempts, len(path), len(res.Route.Waypoints))
	fmt.Printf("header: %d bits (compressed route: %d bits)\n",
		res.Packet.Header.HeaderBits(), res.Packet.Header.RouteBits())
	fmt.Printf("delivered: %v in %.0f ms after %d broadcasts",
		res.Sim.Delivered, res.Sim.DeliveryTime*1000, res.Sim.Broadcasts)
	if res.IdealTransmissions > 0 {
		fmt.Printf(" (overhead %.1fx vs ideal %d unicasts)", res.Overhead(), res.IdealTransmissions)
	}
	fmt.Println()
}
