// Inter-city DFN: §1 asks "how do we form an inter-network of DFNs across
// regions?" and what role satellite links should play between population
// centers. This example stands up three city-scale DFNs, peers them through
// gateway buildings — one pair over surviving fiber, one over a satellite
// bounce — and delivers a message end-to-end: conduit routing inside the
// source city, two link hops through a transit region, conduit routing
// inside the destination city. It then fails a link and shows the
// region-level reroute.
//
//	go run ./examples/inter-city
package main

import (
	"fmt"
	"log"

	"citymesh"
	"citymesh/internal/internetwork"
	"citymesh/internal/sim"
)

func main() {
	in := internetwork.New()

	// Three regions. Gateways: a building in each city's main island.
	mk := func(id internetwork.RegionID, preset string) *internetwork.Region {
		net, err := citymesh.FromPreset(preset, citymesh.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		r := &internetwork.Region{ID: id, Net: net, Gateways: pickGateways(net)}
		if err := in.AddRegion(r); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("region %-10s: %d buildings, %d APs, gateways %v\n",
			id, net.City.NumBuildings(), net.Mesh.NumAPs(), r.Gateways)
		return r
	}
	boston := mk("boston", "gridtown")
	worcester := mk("worcester", "cambridge")
	providence := mk("providence", "chicago")
	_ = worcester

	must(in.AddLink(internetwork.Link{A: "boston", B: "worcester", Kind: internetwork.LinkFiber}))
	must(in.AddLink(internetwork.Link{A: "worcester", B: "providence", Kind: internetwork.LinkSatellite}))

	path, latency, err := in.RegionPath("boston", "providence")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("region route: %v (link latency %.0f ms)\n", path, latency*1000)

	// Pick endpoints that can reach their gateways; retry a few source and
	// destination combinations since per-leg deliverability is below 1.
	var res internetwork.SendResult
	for attempt := 0; attempt < 8; attempt++ {
		src := pickReachable(boston, int64(20+attempt))
		dst := pickReachable(providence, int64(40+attempt))
		res, err = in.Send(
			internetwork.Address{Region: "boston", Building: src},
			internetwork.Address{Region: "providence", Building: dst},
			[]byte("inter-city safety check"), sim.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		if res.Delivered {
			break
		}
	}
	if lat, ok := res.EndToEndLatency(); ok {
		fmt.Printf("delivered via %d legs (%d gateway failovers), %d mesh broadcasts, ~%.0f ms end to end\n",
			len(res.Legs), res.GatewayFailovers, res.TotalBroadcasts, lat*1000)
	} else {
		fmt.Printf("not delivered (%v) after %d legs\n", res.Failure, len(res.Legs))
	}

	// Fail the satellite link: the inter-network partitions (no alternate).
	in.FailLink("worcester", "providence", true)
	if _, _, err := in.RegionPath("boston", "providence"); err != nil {
		fmt.Println("satellite link down: providence unreachable —", err)
	}
	// A backup HF radio link restores connectivity at higher latency.
	must(in.AddLink(internetwork.Link{A: "boston", B: "providence", Kind: internetwork.LinkHFRadio}))
	path, latency, err = in.RegionPath("boston", "providence")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with backup HF link: %v (link latency %.0f ms)\n", path, latency*1000)
}

// pickGateways returns two buildings inside the mesh's largest island:
// a primary gateway plus a failover.
func pickGateways(net *citymesh.Network) []int {
	islands := net.Mesh.Islands()
	if len(islands) == 0 {
		return []int{0}
	}
	var gws []int
	for b := 0; b < net.City.NumBuildings() && len(gws) < 2; b++ {
		aps := net.Mesh.APsInBuilding(b)
		if len(aps) > 0 && net.Mesh.ComponentOf(int(aps[0])) == islands[0].Component {
			gws = append(gws, b)
		}
	}
	if len(gws) == 0 {
		return []int{0}
	}
	return gws
}

// pickReachable returns a building that can reach the region's gateway.
func pickReachable(r *internetwork.Region, seed int64) int {
	pairs, err := r.Net.RandomPairs(seed, 300)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		b := p[0]
		if b == r.Gateway || !r.Net.Reachable(b, r.Gateway) {
			continue
		}
		if _, err := r.Net.PlanRoute(b, r.Gateway); err == nil {
			return b
		}
	}
	return r.Gateway
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
