// Disaster messaging: the paper's motivating application (§1–§3). Alice
// checks on Bob during an outage. Bob has shared his postbox info —
// self-certifying public identity plus postbox building — out-of-band (a QR
// code) before the disaster. Alice seals a message to him, routes it across
// the mesh by building routing, the destination APs store it in Bob's
// postbox, and Bob later retrieves and decrypts it with no certificate
// authority or cloud service involved.
//
//	go run ./examples/disaster-messaging
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"citymesh"
	"citymesh/internal/agent"
	"citymesh/internal/packet"
	"citymesh/internal/postbox"
	"citymesh/internal/runner"
)

func main() {
	net, err := citymesh.FromPreset("cambridge", citymesh.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// --- Before the outage: Bob creates an identity and publishes his
	// postbox info out-of-band.
	bob, err := postbox.NewIdentity(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	alice, err := postbox.NewIdentity(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}

	// Pick Bob's postbox building and a reachable building for Alice.
	// Route planning per candidate is independent work, so plan a bounded
	// batch concurrently and keep the lowest-indexed success — the same
	// pair a one-by-one scan would have chosen.
	var aliceB, bobB int
	pairs, err := net.RandomPairs(7, 500)
	if err != nil {
		log.Fatal(err)
	}
	var candidates [][2]int
	for _, p := range pairs {
		if net.Reachable(p[0], p[1]) {
			candidates = append(candidates, p)
		}
		if len(candidates) == 16 {
			break
		}
	}
	planned := runner.Map(0, len(candidates), func(i int) bool {
		_, err := net.PlanRoute(candidates[i][0], candidates[i][1])
		return err == nil
	})
	for i, ok := range planned {
		if ok {
			aliceB, bobB = candidates[i][0], candidates[i][1]
			break
		}
	}
	info := postbox.PostboxInfo{Identity: bob.Public(), Building: bobB}
	qr := postbox.EncodePostboxInfo(info) // 68 bytes — QR-code sized
	fmt.Printf("Bob's postbox info: %d bytes (address %s, building %d)\n",
		len(qr), bob.Address(), bobB)

	// --- During the outage: the mesh of AP agents is all that's running.
	hub := agent.NewHub(net.Mesh, net.City)
	defer hub.Close()

	// Alice decodes the QR, verifies it is self-certifying, seals her
	// message, and routes it to Bob's postbox building.
	decoded, err := postbox.DecodePostboxInfo(qr)
	if err != nil {
		log.Fatal(err)
	}
	if !decoded.Identity.Verify(bob.Address()) {
		log.Fatal("postbox info failed self-certification")
	}
	sealed, err := postbox.Seal(rand.Reader, alice, decoded.Identity,
		[]byte("Bob - we're okay, staying at the library shelter. Meet us there."))
	if err != nil {
		log.Fatal(err)
	}

	// In a real outage Alice would not trust a single attempt: probe the
	// path with the resilient escalation ladder (retry → widened conduit →
	// multipath → scoped flood) through the public facade first.
	rc := citymesh.DefaultReliableConfig()
	rc.Seed = 7
	probe, err := net.SendReliable(aliceB, decoded.Building, nil,
		citymesh.DefaultSimConfig(), rc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ladder probe: delivered=%v on rung %v (%d broadcasts)\n",
		probe.Delivered, probe.Rung, probe.TotalBroadcasts)

	route, err := net.PlanRoute(aliceB, decoded.Building)
	if err != nil {
		log.Fatal(err)
	}
	pkt, err := net.NewPacket(route, sealed)
	if err != nil {
		log.Fatal(err)
	}
	pkt.Header.Flags |= packet.FlagPostbox | packet.FlagEncrypted | packet.FlagUrgent
	addr := decoded.Identity.Address()
	copy(pkt.Header.Postbox[:], addr[:])

	srcAP := int(net.Mesh.APsInBuilding(aliceB)[0])
	if err := hub.Agent(srcAP).Inject(pkt); err != nil {
		log.Fatal(err)
	}
	hub.Flush()

	// --- Bob polls the APs in his postbox building.
	var got []postbox.StoredMessage
	for _, apID := range net.Mesh.APsInBuilding(bobB) {
		msgs := hub.Agent(int(apID)).Store().Retrieve(addr, 0, bobB)
		if len(msgs) > 0 {
			got = msgs
			break
		}
	}
	if len(got) == 0 {
		log.Fatal("no message arrived in Bob's postbox (unlucky AP placement seed?)")
	}
	plaintext, sender, err := postbox.Open(bob, got[0].Sealed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Bob retrieved %d message(s); sender verified as %s\n", len(got), sender.Address())
	if sender.Address() != alice.Address() {
		log.Fatal("sender address mismatch")
	}
	fmt.Printf("message: %q\n", plaintext)
}
