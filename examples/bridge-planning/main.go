// Bridge planning: the paper's §4 remedy for fractured cities. Large
// features — rivers, parks, highways — break the AP mesh into islands of
// connectivity (Washington D.C. is the paper's example). This example
// detects the islands of the "dc" preset, proposes a small number of
// well-placed relay APs to bridge them, applies the bridges, and shows
// reachability before and after.
//
//	go run ./examples/bridge-planning
package main

import (
	"fmt"
	"log"

	"citymesh"
)

func main() {
	net, err := citymesh.FromPreset("dc", citymesh.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	measure := func() float64 {
		pairs, err := net.RandomPairs(11, 1000)
		if err != nil {
			log.Fatal(err)
		}
		reachable := 0
		for _, p := range pairs {
			if net.Reachable(p[0], p[1]) {
				reachable++
			}
		}
		return float64(reachable) / float64(len(pairs))
	}

	islands := net.Mesh.Islands()
	major := 0
	for _, isl := range islands {
		if isl.APs >= 10 {
			major++
		}
	}
	fmt.Printf("dc: %d APs across %d islands (%d with >=10 APs)\n",
		net.Mesh.NumAPs(), len(islands), major)
	for i, isl := range islands {
		if i >= 5 || isl.APs < 10 {
			break
		}
		fmt.Printf("  island %d: %d APs in %d buildings around %v\n",
			i+1, isl.APs, isl.Buildings, isl.Centroid)
	}
	before := measure()
	fmt.Printf("reachability before bridging: %.1f%%\n", 100*before)

	// Plan bridges from every major island to the largest one. Each bridge
	// is a chain of relay APs spaced under the transmission range — e.g. on
	// bridge pylons across the river, as the paper suggests.
	bridges := net.Mesh.PlanBridges(10)
	totalRelays := 0
	for _, b := range bridges {
		totalRelays += len(b.Relays)
		fmt.Printf("  bridge %v -> %v: %d relay APs over %.0f m\n",
			b.From, b.To, len(b.Relays), b.From.Dist(b.To))
	}
	if len(bridges) == 0 {
		fmt.Println("no bridges needed")
		return
	}

	for _, b := range bridges {
		net.Mesh.AddAPs(b.Relays)
	}
	after := measure()
	fmt.Printf("reachability after %d bridges (%d relay APs, %.3f%% of the mesh): %.1f%%\n",
		len(bridges), totalRelays, 100*float64(totalRelays)/float64(net.Mesh.NumAPs()), 100*after)
	if after <= before {
		fmt.Println("warning: bridging did not improve reachability")
	}
}
