// Emergency alert: the paper's §2 "emergency updates" use case. A city
// authority signs an alert with a key residents pinned out-of-band (posted
// on signage, printed on utility bills), floods it across the whole mesh —
// alerts are broadcast to everyone, so no conduit restriction applies — and
// every resident device verifies the signature and suppresses replays with
// no certificate authority or connectivity beyond the mesh itself.
//
//	go run ./examples/emergency-alert
package main

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"log"

	"citymesh"
	"citymesh/internal/apps"
	"citymesh/internal/routing"
	"citymesh/internal/sim"
)

func main() {
	net, err := citymesh.FromPreset("gridtown", citymesh.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The city's alert authority key pair; the public half is pinned by
	// every resident.
	authPub, authPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}

	alert := &apps.Alert{
		Seq:        1,
		Severity:   apps.SeverityCritical,
		IssuedUnix: 1751700000,
		Body:       "Flash flood warning for riverside districts. Move to high ground now.",
	}
	apps.SignAlert(alert, authPriv)
	payload := apps.EncodeAlert(alert)
	fmt.Printf("alert: %q (%d bytes signed payload)\n", alert.Body, len(payload))

	// City hall injects; the alert floods the mesh (TTL-bounded).
	cityHall := net.City.NumBuildings() / 2
	route, err := net.PlanRoute(cityHall, cityHall)
	if err != nil {
		log.Fatal(err)
	}
	pkt, err := net.NewPacket(route, payload)
	if err != nil {
		log.Fatal(err)
	}

	cfg := sim.DefaultConfig()
	cfg.RecordTranscript = true
	eng := sim.NewEngine(net.Mesh, net.City, routing.Flood{})
	res, err := eng.Run(pkt, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flooded to %d of %d APs with %d broadcasts in %.0f ms (sim time)\n",
		res.APsReached, net.Mesh.NumAPs(), res.Broadcasts, maxReceive(res)*1000)

	// A resident device verifies and accepts the alert...
	resident := apps.NewAlertReceiver(authPub)
	got, err := resident.Accept(payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resident verified alert seq=%d severity=%s\n", got.Seq, got.Severity)

	// ...rejects a replay...
	if _, err := resident.Accept(payload); err != nil {
		fmt.Printf("replay rejected: %v\n", err)
	}

	// ...and rejects a forgery from a different key.
	_, evilPriv, _ := ed25519.GenerateKey(rand.Reader)
	forged := &apps.Alert{Seq: 2, Severity: apps.SeverityInfo, Body: "all clear (forged)"}
	apps.SignAlert(forged, evilPriv)
	if _, err := resident.Accept(apps.EncodeAlert(forged)); err != nil {
		fmt.Printf("forgery rejected: %v\n", err)
	}

}

// maxReceive returns the latest reception time in the transcript.
func maxReceive(res sim.Result) float64 {
	t := 0.0
	for _, rec := range res.Transcript {
		if rec.Received && rec.ReceiveTime > t {
			t = rec.ReceiveTime
		}
	}
	return t
}
