// UDP testbed: the paper's §6 calls for "building out a testbed of a
// to-scale mesh network". This example runs a real one on localhost: it
// takes a corridor of a synthetic city, starts one UDP agent per AP (each
// with its own socket), wires neighbor tables from AP geometry (standing in
// for radio range), and delivers a message end-to-end through actual
// sockets with the conduit forwarding rule.
//
//	go run ./examples/udp-testbed
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"citymesh"
	"citymesh/internal/agent"
	"citymesh/internal/packet"
)

func main() {
	full, err := citymesh.FromPreset("gridtown", citymesh.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Keep the testbed small: agents for the APs of the buildings along
	// one planned route's conduit. Pick a route the simulator confirms
	// deliverable so the socket run exercises a live conduit.
	var src, dst int
	found := false
	for _, p := range full.RandomPairs(5, 500) {
		if !full.Reachable(p[0], p[1]) {
			continue
		}
		path, err := full.BuildingPath(p[0], p[1])
		if err != nil || len(path) < 6 {
			continue
		}
		res, err := full.Send(p[0], p[1], nil, citymesh.DefaultSimConfig())
		if err == nil && res.Sim.Delivered {
			src, dst = p[0], p[1]
			found = true
			break
		}
	}
	if !found {
		log.Fatal("no deliverable multi-hop route found")
	}
	route, err := full.PlanRoute(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	conduits, err := route.Conduits(full.City)
	if err != nil {
		log.Fatal(err)
	}

	// Select the APs inside the conduit (these are the ones that matter).
	type node struct {
		apID int
		ag   *agent.Agent
		tr   *agent.UDPTransport
	}
	var nodes []node
	for i, ap := range full.Mesh.APs {
		// Membership follows the forwarding rule: the AP's *building* must
		// fall inside a conduit (all APs of an in-conduit building relay).
		probe := ap.Pos
		if ap.Building >= 0 {
			probe = full.City.Buildings[ap.Building].Centroid
		}
		inConduit := false
		for _, c := range conduits {
			if c.Contains(probe) {
				inConduit = true
				break
			}
		}
		if !inConduit {
			continue
		}
		a := agent.New(agent.Config{ID: i, Pos: ap.Pos, Building: ap.Building, City: full.City}, nil)
		tr, err := agent.NewUDPTransport("127.0.0.1:0", a.HandleFrame)
		if err != nil {
			log.Fatal(err)
		}
		a.Attach(tr)
		nodes = append(nodes, node{apID: i, ag: a, tr: tr})
	}
	defer func() {
		for _, n := range nodes {
			n.ag.Close()
		}
	}()
	fmt.Printf("testbed: %d UDP agents along the %d-waypoint conduit (route %d -> %d)\n",
		len(nodes), len(route.Waypoints), src, dst)

	// Wire neighbor tables by geometry: within transmission range.
	rangeM := citymesh.DefaultConfig().TransmissionRange
	for i := range nodes {
		var neigh []*net.UDPAddr
		pi := full.Mesh.APs[nodes[i].apID].Pos
		for j := range nodes {
			if i == j {
				continue
			}
			pj := full.Mesh.APs[nodes[j].apID].Pos
			if pi.Dist(pj) <= rangeM {
				neigh = append(neigh, nodes[j].tr.Addr())
			}
		}
		nodes[i].tr.SetNeighbors(neigh)
	}

	// Find injection and delivery nodes.
	var injector *agent.Agent
	delivered := make(chan string, 1)
	for _, n := range nodes {
		if n.ag.Building() == src && injector == nil {
			injector = n.ag
		}
		if n.ag.Building() == dst {
			n.ag.OnDeliver(func(p *packet.Packet) {
				select {
				case delivered <- string(p.Payload):
				default:
				}
			})
		}
	}
	if injector == nil {
		log.Fatal("no agent in the source building")
	}

	pkt, err := full.NewPacket(route, []byte("hello over real sockets"))
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := injector.Inject(pkt); err != nil {
		log.Fatal(err)
	}

	select {
	case payload := <-delivered:
		fmt.Printf("delivered %q in %v\n", payload, time.Since(start).Round(time.Millisecond))
	case <-time.After(10 * time.Second):
		log.Fatal("timed out waiting for delivery")
	}

	// Report forwarding activity.
	totalRx, totalFwd := 0, 0
	for _, n := range nodes {
		st := n.ag.Stats()
		totalRx += st.Received
		totalFwd += st.Rebroadcast
	}
	fmt.Printf("activity: %d frame receptions, %d rebroadcasts across %d agents\n",
		totalRx, totalFwd, len(nodes))
}
