// UDP testbed: the paper's §6 calls for "building out a testbed of a
// to-scale mesh network". This example runs a real one on localhost: it
// takes a corridor of a synthetic city, starts one UDP agent per AP (each
// with its own socket), wires neighbor tables from AP geometry (standing in
// for radio range), and delivers a message end-to-end through actual
// sockets with the conduit forwarding rule.
//
// A second phase demonstrates crash-safe postboxes: the destination AP is
// rebuilt with a persistent store (the -state-dir machinery of
// citymesh-agent), receives a postbox-flagged message over the same
// conduit, is killed without any graceful shutdown, and the stored message
// is shown to survive a reopen of the state directory — the
// reboot-survival property a real AP needs.
//
//	go run ./examples/udp-testbed
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"citymesh"
	"citymesh/internal/agent"
	"citymesh/internal/fwd"
	"citymesh/internal/packet"
	"citymesh/internal/postbox"
)

func main() {
	full, err := citymesh.FromPreset("gridtown", citymesh.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Keep the testbed small: agents for the APs of the buildings along
	// one planned route's conduit. Pick a route the simulator confirms
	// deliverable so the socket run exercises a live conduit.
	var src, dst int
	found := false
	pairs, err := full.RandomPairs(5, 500)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		if !full.Reachable(p[0], p[1]) {
			continue
		}
		path, err := full.BuildingPath(p[0], p[1])
		if err != nil || len(path) < 6 {
			continue
		}
		res, err := full.Send(p[0], p[1], nil, citymesh.DefaultSimConfig())
		if err == nil && res.Sim.Delivered {
			src, dst = p[0], p[1]
			found = true
			break
		}
	}
	if !found {
		log.Fatal("no deliverable multi-hop route found")
	}
	route, err := full.PlanRoute(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	conduits, err := route.Conduits(full.City)
	if err != nil {
		log.Fatal(err)
	}

	// Select the APs inside the conduit (these are the ones that matter).
	type node struct {
		apID int
		ag   *agent.Agent
		tr   *agent.UDPTransport
	}
	var nodes []node
	for i, ap := range full.Mesh.APs {
		// Membership follows the forwarding rule: the AP's *building* must
		// fall inside a conduit (all APs of an in-conduit building relay).
		probe := ap.Pos
		if ap.Building >= 0 {
			probe = full.City.Buildings[ap.Building].Centroid
		}
		inConduit := false
		for _, c := range conduits {
			if c.Contains(probe) {
				inConduit = true
				break
			}
		}
		if !inConduit {
			continue
		}
		a := agent.New(agent.Config{ID: i, Pos: ap.Pos, Building: ap.Building, City: full.City}, nil)
		tr, err := agent.NewUDPTransport("127.0.0.1:0", a.HandleFrameFrom)
		if err != nil {
			log.Fatal(err)
		}
		a.Attach(tr)
		nodes = append(nodes, node{apID: i, ag: a, tr: tr})
	}
	defer func() {
		for _, n := range nodes {
			n.ag.Close()
		}
	}()
	fmt.Printf("testbed: %d UDP agents along the %d-waypoint conduit (route %d -> %d)\n",
		len(nodes), len(route.Waypoints), src, dst)

	// Wire neighbor tables by geometry: within transmission range.
	rangeM := citymesh.DefaultConfig().TransmissionRange
	for i := range nodes {
		var neigh []*net.UDPAddr
		pi := full.Mesh.APs[nodes[i].apID].Pos
		for j := range nodes {
			if i == j {
				continue
			}
			pj := full.Mesh.APs[nodes[j].apID].Pos
			if pi.Dist(pj) <= rangeM {
				neigh = append(neigh, nodes[j].tr.Addr())
			}
		}
		nodes[i].tr.SetNeighbors(neigh)
	}

	// Find injection and delivery nodes.
	var injector *agent.Agent
	delivered := make(chan string, 1)
	for _, n := range nodes {
		if n.ag.Building() == src && injector == nil {
			injector = n.ag
		}
		if n.ag.Building() == dst {
			n.ag.OnDeliver(func(p *packet.Packet) {
				select {
				case delivered <- string(p.Payload):
				default:
				}
			})
		}
	}
	if injector == nil {
		log.Fatal("no agent in the source building")
	}

	pkt, err := full.NewPacket(route, []byte("hello over real sockets"))
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := injector.Inject(pkt); err != nil {
		log.Fatal(err)
	}

	select {
	case payload := <-delivered:
		fmt.Printf("delivered %q in %v\n", payload, time.Since(start).Round(time.Millisecond))
	case <-time.After(10 * time.Second):
		log.Fatal("timed out waiting for delivery")
	}

	// Report forwarding activity, including the shared kernel's verdict
	// breakdown — the same counters a sim run reports, so this live
	// testbed's behavior is directly comparable to its simulated twin.
	totalRx, totalFwd := 0, 0
	var dec fwd.Counts
	for _, n := range nodes {
		st := n.ag.Stats()
		totalRx += st.Received
		totalFwd += st.Rebroadcast
		d := st.Decisions
		dec = fwd.Counts{
			FirstHop:     dec.FirstHop + d.FirstHop,
			TTLExpired:   dec.TTLExpired + d.TTLExpired,
			Geocast:      dec.Geocast + d.Geocast,
			InConduit:    dec.InConduit + d.InConduit,
			OutOfConduit: dec.OutOfConduit + d.OutOfConduit,
			BadRoute:     dec.BadRoute + d.BadRoute,
		}
	}
	fmt.Printf("activity: %d frame receptions, %d rebroadcasts across %d agents\n",
		totalRx, totalFwd, len(nodes))
	fmt.Printf("kernel verdicts: first-hop=%d in-conduit=%d out-of-conduit=%d ttl-expired=%d bad-route=%d\n",
		dec.FirstHop, dec.InConduit, dec.OutOfConduit, dec.TTLExpired, dec.BadRoute)

	// --- Phase 2: crash-safe postbox at the destination AP ---

	// Rebuild the first destination-building agent around a persistent
	// store, keeping its UDP port so the other agents' neighbor tables
	// stay valid.
	var dstIdx = -1
	for i, n := range nodes {
		if n.ag.Building() == dst {
			dstIdx = i
			break
		}
	}
	if dstIdx < 0 {
		log.Fatal("no agent in the destination building")
	}
	stateDir, err := os.MkdirTemp("", "citymesh-testbed-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)
	store, err := postbox.OpenDir(stateDir)
	if err != nil {
		log.Fatal(err)
	}

	old := nodes[dstIdx]
	port := old.tr.Addr().String()
	if err := old.ag.Close(); err != nil {
		log.Fatal(err)
	}
	ap := full.Mesh.APs[old.apID]
	repl := agent.New(agent.Config{
		ID: old.apID, Pos: ap.Pos, Building: ap.Building,
		City: full.City, Store: store,
	}, nil)
	rtr, err := agent.NewUDPTransport(port, repl.HandleFrameFrom)
	if err != nil {
		log.Fatal(err)
	}
	repl.Attach(rtr)
	nodes[dstIdx] = node{apID: old.apID, ag: repl, tr: rtr}
	fmt.Printf("phase 2: destination AP restarted on %s with state-dir %s\n", port, stateDir)

	// Send a postbox-flagged message through the same conduit. The
	// destination AP must persist it for later pickup.
	var pbAddr postbox.Address
	copy(pbAddr[:], "survivor")
	sealed := []byte("sealed-for-bob")
	pbPkt, err := full.NewPacket(route, sealed)
	if err != nil {
		log.Fatal(err)
	}
	pbPkt.Header.Flags |= packet.FlagPostbox | packet.FlagUrgent
	pbPkt.Header.Postbox = pbAddr
	if err := injector.Inject(pbPkt); err != nil {
		log.Fatal(err)
	}
	stored := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if store.Len(pbAddr) > 0 {
			stored = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !stored {
		log.Fatal("postbox message never reached the destination store")
	}
	fmt.Println("phase 2: postbox message persisted at destination")

	// Crash: tear the socket down and abandon the store with no Sync and
	// no Close — nothing graceful happens in a power cut. Then reopen the
	// state directory the way a rebooted AP would and check the message
	// survived.
	if err := repl.Close(); err != nil {
		log.Fatal(err)
	}
	reopened, err := postbox.OpenDir(stateDir)
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	got := reopened.Retrieve(pbAddr, 0, dst)
	if len(got) != 1 || !bytes.Equal(got[0].Sealed, sealed) || !got[0].Urgent {
		log.Fatalf("postbox content lost in crash: %+v", got)
	}
	fmt.Printf("phase 2: after crash+reopen, postbox holds %d message (seq %d, %q) — state survived\n",
		len(got), got[0].Seq, got[0].Sealed)
}
