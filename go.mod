module citymesh

go 1.22
