package citymesh_test

// End-to-end integration tests across the whole stack: synthetic city →
// OSM XML → parse/extract → network build → routing → event simulation →
// postbox application, exactly the path a real deployment would take with a
// real map extract.

import (
	"bytes"
	"crypto/rand"
	"testing"

	"citymesh"
	"citymesh/internal/apps"
	"citymesh/internal/citygen"
	"citymesh/internal/osm"
	"citymesh/internal/packet"
	"citymesh/internal/postbox"
)

// TestFullPipelineOSMToDelivery drives the production path: generate a
// city, serialize it to OSM XML, build the network from the XML, and
// deliver a message.
func TestFullPipelineOSMToDelivery(t *testing.T) {
	plan, err := citygen.Generate(citygen.SmallTestSpec(401))
	if err != nil {
		t.Fatal(err)
	}
	var xml bytes.Buffer
	if err := osm.Write(&xml, plan.Document()); err != nil {
		t.Fatal(err)
	}
	t.Logf("OSM XML extract: %d bytes, %d buildings generated", xml.Len(), len(plan.Buildings))

	net, err := citymesh.FromOSM(&xml, "integration", citymesh.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if net.City.NumBuildings() < len(plan.Buildings)*8/10 {
		t.Fatalf("extraction lost buildings: %d of %d", net.City.NumBuildings(), len(plan.Buildings))
	}

	delivered := 0
	attempted := 0
	pairs, err := net.RandomPairs(1, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if !net.Reachable(p[0], p[1]) {
			continue
		}
		res, err := net.Send(p[0], p[1], []byte("integration"), citymesh.DefaultSimConfig())
		if err != nil {
			continue
		}
		attempted++
		if res.Sim.Delivered {
			delivered++
			// Wire-format sanity on the real packet.
			frame, err := res.Packet.Encode(nil)
			if err != nil {
				t.Fatal(err)
			}
			back, err := packet.Decode(frame)
			if err != nil {
				t.Fatal(err)
			}
			if back.Header.Dst() != p[1] {
				t.Fatal("wire round trip changed destination")
			}
		}
		if attempted >= 20 {
			break
		}
	}
	if attempted == 0 {
		t.Fatal("no sends attempted")
	}
	if float64(delivered)/float64(attempted) < 0.5 {
		t.Errorf("integration deliverability %d/%d", delivered, attempted)
	}
}

// TestFullPipelinePostboxRoundTrip exercises §3's four steps end to end:
// out-of-band postbox info, sealed send over the mesh, store at the
// destination, over-the-mesh poll and reply, decrypt.
func TestFullPipelinePostboxRoundTrip(t *testing.T) {
	net, err := citymesh.FromSpec(citygen.SmallTestSpec(402), citymesh.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	alice, err := postbox.NewIdentity(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := postbox.NewIdentity(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	// Find a bidirectionally deliverable pair: Alice's building and Bob's
	// postbox building.
	var aliceB, bobB int
	found := false
	pairs, err := net.RandomPairs(2, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if !net.Reachable(p[0], p[1]) {
			continue
		}
		r1, e1 := net.Send(p[0], p[1], nil, citymesh.DefaultSimConfig())
		r2, e2 := net.Send(p[1], p[0], nil, citymesh.DefaultSimConfig())
		if e1 == nil && e2 == nil && r1.Sim.Delivered && r2.Sim.Delivered {
			aliceB, bobB = p[0], p[1]
			found = true
			break
		}
	}
	if !found {
		t.Skip("no bidirectional pair")
	}

	// Step 1: out-of-band exchange.
	info := postbox.PostboxInfo{Identity: bob.Public(), Building: bobB}
	decoded, err := postbox.DecodePostboxInfo(postbox.EncodePostboxInfo(info))
	if err != nil {
		t.Fatal(err)
	}
	if !decoded.Identity.Verify(bob.Address()) {
		t.Fatal("self-certification failed")
	}

	// Step 2+3: seal and send through the mesh.
	sealed, err := postbox.Seal(rand.Reader, alice, decoded.Identity, []byte("meet at the shelter"))
	if err != nil {
		t.Fatal(err)
	}
	route, err := net.PlanRoute(aliceB, decoded.Building)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := net.NewPacket(route, sealed)
	if err != nil {
		t.Fatal(err)
	}
	pkt.Header.Flags |= packet.FlagPostbox | packet.FlagEncrypted
	addr := bob.Address()
	copy(pkt.Header.Postbox[:], addr[:])
	res, err := net.Engine().Run(pkt, citymesh.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Skip("send leg failed on this seed")
	}

	// The destination building's store accepts the message.
	store := postbox.NewStore()
	store.Put(addr, pkt.Payload, false)

	// Step 4: Bob polls over the mesh from his current (different) building.
	out, err := apps.Retrieve(net, store, bob, aliceB, bobB, 0, citymesh.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !out.PollDelivered || !out.ReplyDelivered {
		t.Skipf("retrieval legs: poll=%v reply=%v", out.PollDelivered, out.ReplyDelivered)
	}
	if len(out.Messages) != 1 {
		t.Fatalf("retrieved %d messages", len(out.Messages))
	}
	plain, sender, err := postbox.Open(bob, out.Messages[0].Sealed)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != "meet at the shelter" || sender.Address() != alice.Address() {
		t.Errorf("plain=%q sender=%s", plain, sender.Address())
	}
}
